//! PR3 throughput — speed artifact for the PFOR-family word-layout
//! migration.
//!
//! Three layers are measured, all in values/second:
//!
//! * **Kernels**: `pack_words`/`unpack_words` (generic scalar) vs the
//!   width-specialized unrolled kernels vs the fused frame-of-reference
//!   variants, for every width 1..=64 on `BOS_N` uniformly-masked values.
//! * **Operators**: every [`PackerKind`] (the PFOR family plus the three
//!   BOS solvers) encoding/decoding the paper's datasets in 1024-value
//!   blocks — the block size the paper's experiments use.
//! * **Migration**: the frozen v1 bit-serial PFOR/FastPFOR/SimplePFOR
//!   baselines (`pfor::v1`, the PR 2 BitReader formats) against their v2
//!   word-packed replacements, same datasets and block size. The v2 decode
//!   must be at least [`MIGRATION_GATE`]× the v1 decode per codec.
//!
//! Results are written to `BENCH_PR3.json` at the workspace root so later
//! PRs can diff their numbers against this artifact (`BENCH_PR2.json` from
//! the previous PR is kept untouched). Timings use [`time_best_of`]
//! (warmup + min-of-`BOS_REPEATS`) for reproducibility.

use crate::harness::{time_best_of, Config, Table};
use bitpack::kernels::{pack_words, unpack_words};
use bitpack::unrolled::{
    pack_words_for, pack_words_unrolled, unpack_words_for, unpack_words_unrolled,
};
use datasets::all_datasets;
use encodings::{IntPacker, PackerKind};
use std::path::PathBuf;

/// Block size used for the operator measurements (the paper's default).
const BLOCK: usize = 1024;

/// Reference used for the fused frame-of-reference kernel runs.
const FUSED_REF: i64 = -123_456_789;

/// The widths the acceptance gate covers: the unrolled unpack kernels must
/// beat the generic scalar kernel by [`GATE_SPEEDUP`]x in geomean over
/// these widths, and by [`GATE_WIDTH_FLOOR`]x on every single one.
const GATE_WIDTHS: std::ops::RangeInclusive<u32> = 1..=20;

/// Required *geomean* unpack speedup over [`GATE_WIDTHS`]. PR 2 gated the
/// per-width minimum at 2x, but on single-core hosts one width's ratio
/// swings +/-30% with binary layout alone, so the aggregate carries the
/// claim and a looser per-width floor catches real regressions.
const GATE_SPEEDUP: f64 = 2.0;

/// Required minimum per-width unpack speedup on [`GATE_WIDTHS`].
const GATE_WIDTH_FLOOR: f64 = 1.5;

/// Smallest `BOS_N` at which the speedup gate is enforced (below this a
/// timed run is about a microsecond and the ratio is mostly timer noise;
/// the default config of 30 000 is well above it).
const GATE_MIN_N: usize = 10_000;

/// Required minimum v2-over-v1 decode speedup (geomean across datasets)
/// for each migrated codec.
const MIGRATION_GATE: f64 = 1.5;

struct KernelRow {
    width: u32,
    pack_generic: f64,
    pack_unrolled: f64,
    pack_fused: f64,
    unpack_generic: f64,
    unpack_unrolled: f64,
    unpack_fused: f64,
}

impl KernelRow {
    fn unpack_speedup(&self) -> f64 {
        self.unpack_unrolled / self.unpack_generic
    }
}

struct OperatorRow {
    name: &'static str,
    dataset: &'static str,
    encode: f64,
    decode: f64,
    ratio: f64,
}

struct MigrationRow {
    name: &'static str,
    dataset: &'static str,
    decode_v1: f64,
    decode_v2: f64,
    bytes_v1: usize,
    bytes_v2: usize,
}

impl MigrationRow {
    fn decode_speedup(&self) -> f64 {
        self.decode_v2 / self.decode_v1
    }
}

/// Values per second from a count and elapsed nanoseconds.
fn vps(n: usize, ns: f64) -> f64 {
    n as f64 / (ns.max(1.0) / 1e9)
}

fn masked_values(n: usize, w: u32) -> Vec<u64> {
    let mask = if w == 0 {
        0
    } else if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    };
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) & mask)
        .collect()
}

fn kernel_rows(cfg: &Config) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for w in 1..=64u32 {
        let deltas = masked_values(cfg.n, w);
        let originals: Vec<i64> = deltas
            .iter()
            .map(|&d| FUSED_REF.wrapping_add(d as i64))
            .collect();

        let mut buf = Vec::new();
        let (_, pack_generic_ns) = time_best_of(cfg.repeats, || {
            buf.clear();
            pack_words(&deltas, w, &mut buf);
        });
        let mut buf2 = Vec::new();
        let (_, pack_unrolled_ns) = time_best_of(cfg.repeats, || {
            buf2.clear();
            pack_words_unrolled(&deltas, w, &mut buf2);
        });
        assert_eq!(buf, buf2, "unrolled pack must be bit-identical (w = {w})");
        let mut buf3 = Vec::new();
        let (_, pack_fused_ns) = time_best_of(cfg.repeats, || {
            buf3.clear();
            pack_words_for(&originals, FUSED_REF, w, &mut buf3);
        });
        assert_eq!(buf, buf3, "fused pack must be bit-identical (w = {w})");

        let mut out = Vec::new();
        let (_, unpack_generic_ns) = time_best_of(cfg.repeats, || {
            out.clear();
            unpack_words(&buf, cfg.n, w, &mut out).expect("unpack");
        });
        let mut out2 = Vec::new();
        let (_, unpack_unrolled_ns) = time_best_of(cfg.repeats, || {
            out2.clear();
            unpack_words_unrolled(&buf, cfg.n, w, &mut out2).expect("unpack");
        });
        assert_eq!(out, out2, "unrolled unpack must match (w = {w})");
        let mut restored = Vec::new();
        let (_, unpack_fused_ns) = time_best_of(cfg.repeats, || {
            restored.clear();
            unpack_words_for(&buf, cfg.n, w, FUSED_REF, &mut restored).expect("unpack");
        });
        assert_eq!(restored, originals, "fused unpack must restore (w = {w})");

        rows.push(KernelRow {
            width: w,
            pack_generic: vps(cfg.n, pack_generic_ns),
            pack_unrolled: vps(cfg.n, pack_unrolled_ns),
            pack_fused: vps(cfg.n, pack_fused_ns),
            unpack_generic: vps(cfg.n, unpack_generic_ns),
            unpack_unrolled: vps(cfg.n, unpack_unrolled_ns),
            unpack_fused: vps(cfg.n, unpack_fused_ns),
        });
    }
    rows
}

fn operator_rows(cfg: &Config) -> Vec<OperatorRow> {
    let sets = all_datasets(cfg.n);
    let mut rows = Vec::new();
    for kind in PackerKind::ALL {
        let packer = kind.build();
        for dataset in &sets {
            let ints = dataset.as_scaled_ints();
            let mut buf = Vec::new();
            let (_, encode_ns) = time_best_of(cfg.repeats, || {
                buf.clear();
                for block in ints.chunks(BLOCK) {
                    packer.encode(block, &mut buf);
                }
            });
            let blocks = ints.len().div_ceil(BLOCK).max(1);
            let mut out = Vec::new();
            let (_, decode_ns) = time_best_of(cfg.repeats, || {
                out.clear();
                let mut pos = 0;
                for _ in 0..blocks {
                    packer.decode(&buf, &mut pos, &mut out).expect("decode");
                }
            });
            assert_eq!(out, ints, "{} roundtrip on {}", packer.name(), dataset.abbr);
            rows.push(OperatorRow {
                name: packer.name(),
                dataset: dataset.abbr,
                encode: vps(ints.len(), encode_ns),
                decode: vps(ints.len(), decode_ns),
                ratio: dataset.uncompressed_bytes() as f64 / buf.len() as f64,
            });
        }
    }
    rows
}

type V1Encode = fn(&[i64], &mut Vec<u8>);
type V1Decode = fn(&[u8], &mut usize, &mut Vec<i64>) -> bitpack::DecodeResult<()>;

/// The migrated codecs, paired with their frozen v1 implementations.
fn migrated() -> Vec<(&'static str, V1Encode, V1Decode, Box<dyn IntPacker>)> {
    vec![
        (
            "PFOR",
            pfor::v1::encode_pfor_v1 as V1Encode,
            pfor::v1::decode_pfor_v1 as V1Decode,
            Box::new(pfor::PforCodec::new()),
        ),
        (
            "FASTPFOR",
            pfor::v1::encode_fastpfor_v1,
            pfor::v1::decode_fastpfor_v1,
            Box::new(pfor::FastPforCodec::new()),
        ),
        (
            "SIMPLEPFOR",
            pfor::v1::encode_simplepfor_v1,
            pfor::v1::decode_simplepfor_v1,
            Box::new(pfor::SimplePforCodec::new()),
        ),
    ]
}

fn migration_rows(cfg: &Config) -> Vec<MigrationRow> {
    let sets = all_datasets(cfg.n);
    let mut rows = Vec::new();
    for (name, enc_v1, dec_v1, codec) in migrated() {
        for dataset in &sets {
            let ints = dataset.as_scaled_ints();
            let blocks = ints.len().div_ceil(BLOCK).max(1);

            let mut buf_v1 = Vec::new();
            for block in ints.chunks(BLOCK) {
                enc_v1(block, &mut buf_v1);
            }
            let mut out = Vec::new();
            let (_, v1_ns) = time_best_of(cfg.repeats, || {
                out.clear();
                let mut pos = 0;
                for _ in 0..blocks {
                    dec_v1(&buf_v1, &mut pos, &mut out).expect("v1 decode");
                }
            });
            assert_eq!(out, ints, "{name} v1 roundtrip on {}", dataset.abbr);

            let mut buf_v2 = Vec::new();
            for block in ints.chunks(BLOCK) {
                codec.encode(block, &mut buf_v2);
            }
            let (_, v2_ns) = time_best_of(cfg.repeats, || {
                out.clear();
                let mut pos = 0;
                for _ in 0..blocks {
                    codec.decode(&buf_v2, &mut pos, &mut out).expect("v2 decode");
                }
            });
            assert_eq!(out, ints, "{name} v2 roundtrip on {}", dataset.abbr);

            rows.push(MigrationRow {
                name,
                dataset: dataset.abbr,
                decode_v1: vps(ints.len(), v1_ns),
                decode_v2: vps(ints.len(), v2_ns),
                bytes_v1: buf_v1.len(),
                bytes_v2: buf_v2.len(),
            });
        }
    }
    rows
}

/// Geomean decode speedup per codec, in [`migrated`] order.
fn migration_summary(rows: &[MigrationRow]) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    for (name, ..) in migrated() {
        let per: Vec<f64> = rows
            .iter()
            .filter(|r| r.name == name)
            .map(MigrationRow::decode_speedup)
            .collect();
        let geomean = (per.iter().map(|s| s.ln()).sum::<f64>() / per.len() as f64).exp();
        out.push((name, geomean));
    }
    out
}

fn fmt_mvps(v: f64) -> String {
    format!("{:.1}", v / 1e6)
}

/// One JSON number with sane formatting (no NaN/inf can reach here).
fn jnum(v: f64) -> String {
    format!("{v:.1}")
}

fn render_json(
    cfg: &Config,
    kernels: &[KernelRow],
    operators: &[OperatorRow],
    migration: &[MigrationRow],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"PR3 throughput: PFOR-family word-layout migration\",\n");
    s.push_str("  \"units\": \"values_per_second\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"n\": {}, \"repeats\": {}, \"block\": {} }},\n",
        cfg.n, cfg.repeats, BLOCK
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"width\": {}, \"pack_generic\": {}, \"pack_unrolled\": {}, \
             \"pack_fused\": {}, \"unpack_generic\": {}, \"unpack_unrolled\": {}, \
             \"unpack_fused\": {}, \"unpack_speedup\": {} }}{}\n",
            r.width,
            jnum(r.pack_generic),
            jnum(r.pack_unrolled),
            jnum(r.pack_fused),
            jnum(r.unpack_generic),
            jnum(r.unpack_unrolled),
            jnum(r.unpack_fused),
            format_args!("{:.2}", r.unpack_speedup()),
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let gate: Vec<&KernelRow> = kernels
        .iter()
        .filter(|r| GATE_WIDTHS.contains(&r.width))
        .collect();
    let min_speedup = gate
        .iter()
        .map(|r| r.unpack_speedup())
        .fold(f64::INFINITY, f64::min);
    let geomean = (gate
        .iter()
        .map(|r| r.unpack_speedup().ln())
        .sum::<f64>()
        / gate.len() as f64)
        .exp();
    s.push_str(&format!(
        "  \"kernel_summary\": {{ \"gate_widths\": \"1..=20\", \
         \"min_unpack_speedup\": {:.2}, \"geomean_unpack_speedup\": {:.2} }},\n",
        min_speedup, geomean
    ));
    s.push_str("  \"operators\": [\n");
    for (i, r) in operators.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"dataset\": \"{}\", \"encode\": {}, \
             \"decode\": {}, \"ratio\": {} }}{}\n",
            r.name,
            r.dataset,
            jnum(r.encode),
            jnum(r.decode),
            format_args!("{:.2}", r.ratio),
            if i + 1 < operators.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"migration\": [\n");
    for (i, r) in migration.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"dataset\": \"{}\", \"decode_v1\": {}, \
             \"decode_v2\": {}, \"decode_speedup\": {}, \"bytes_v1\": {}, \
             \"bytes_v2\": {} }}{}\n",
            r.name,
            r.dataset,
            jnum(r.decode_v1),
            jnum(r.decode_v2),
            format_args!("{:.2}", r.decode_speedup()),
            r.bytes_v1,
            r.bytes_v2,
            if i + 1 < migration.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let summary = migration_summary(migration);
    s.push_str("  \"migration_summary\": {\n");
    s.push_str(&format!(
        "    \"gate\": {MIGRATION_GATE},\n"
    ));
    for (i, (name, geomean)) in summary.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {:.2}{}\n",
            geomean,
            if i + 1 < summary.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Workspace-root path for the artifact.
fn output_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("BENCH_PR3.json")
}

/// Runs the experiment and writes `BENCH_PR3.json`.
pub fn run(cfg: &Config) {
    super::banner(
        "PR3 throughput: kernels, operators, and v1->v2 migration (values/s)",
        cfg,
    );

    let kernels = kernel_rows(cfg);
    println!("Kernel throughput (million values/s), generic vs unrolled vs fused:");
    let mut table = Table::new([
        "width",
        "pack gen",
        "pack unr",
        "pack fused",
        "unpack gen",
        "unpack unr",
        "unpack fused",
        "unpack x",
    ]);
    for r in &kernels {
        table.row([
            r.width.to_string(),
            fmt_mvps(r.pack_generic),
            fmt_mvps(r.pack_unrolled),
            fmt_mvps(r.pack_fused),
            fmt_mvps(r.unpack_generic),
            fmt_mvps(r.unpack_unrolled),
            fmt_mvps(r.unpack_fused),
            format!("{:.2}", r.unpack_speedup()),
        ]);
    }
    table.print();
    println!();

    let gate: Vec<&KernelRow> = kernels
        .iter()
        .filter(|r| GATE_WIDTHS.contains(&r.width))
        .collect();
    let min_speedup = gate
        .iter()
        .map(|r| r.unpack_speedup())
        .fold(f64::INFINITY, f64::min);
    let geomean_speedup = (gate
        .iter()
        .map(|r| r.unpack_speedup().ln())
        .sum::<f64>()
        / gate.len() as f64)
        .exp();
    println!(
        "Unpack speedup over widths {}..={}: geomean {geomean_speedup:.2}x \
         (gate: >= {GATE_SPEEDUP}x), min {min_speedup:.2}x (floor: >= {GATE_WIDTH_FLOOR}x)",
        GATE_WIDTHS.start(),
        GATE_WIDTHS.end()
    );
    // The gate is only meaningful on optimized builds — in debug the
    // "unrolled" loop is not unrolled at all — and with enough values per
    // timed run for the ratio to rise above timer noise (a few thousand
    // values unpack in ~1 µs).
    if cfg!(debug_assertions) {
        println!("(debug build: speedup gate reported but not enforced)");
    } else if cfg.n < GATE_MIN_N {
        println!("(BOS_N < {GATE_MIN_N}: speedup gate reported but not enforced)");
    } else {
        assert!(
            geomean_speedup >= GATE_SPEEDUP,
            "unrolled unpack must average >= {GATE_SPEEDUP}x generic on widths 1..=20, got {geomean_speedup:.2}x"
        );
        assert!(
            min_speedup >= GATE_WIDTH_FLOOR,
            "every width in 1..=20 must unpack >= {GATE_WIDTH_FLOOR}x generic, got {min_speedup:.2}x"
        );
    }
    println!();

    let operators = operator_rows(cfg);
    println!("Operator throughput (million values/s), 1024-value blocks:");
    let mut table = Table::new(["operator", "dataset", "encode", "decode", "ratio"]);
    for r in &operators {
        table.row([
            r.name.to_string(),
            r.dataset.to_string(),
            fmt_mvps(r.encode),
            fmt_mvps(r.decode),
            format!("{:.2}", r.ratio),
        ]);
    }
    table.print();
    println!();

    let migration = migration_rows(cfg);
    println!("Migration: frozen v1 bit-serial decode vs v2 word-packed decode:");
    let mut table = Table::new([
        "codec",
        "dataset",
        "v1 decode",
        "v2 decode",
        "speedup",
        "v1 bytes",
        "v2 bytes",
    ]);
    for r in &migration {
        table.row([
            r.name.to_string(),
            r.dataset.to_string(),
            fmt_mvps(r.decode_v1),
            fmt_mvps(r.decode_v2),
            format!("{:.2}", r.decode_speedup()),
            r.bytes_v1.to_string(),
            r.bytes_v2.to_string(),
        ]);
    }
    table.print();
    println!();
    for (name, geomean) in migration_summary(&migration) {
        println!(
            "{name}: geomean v2/v1 decode speedup {geomean:.2}x (gate: >= {MIGRATION_GATE}x)"
        );
        if cfg!(debug_assertions) || cfg.n < GATE_MIN_N {
            continue; // same noise rationale as the kernel gate above
        }
        assert!(
            geomean >= MIGRATION_GATE,
            "{name}: v2 decode must be >= {MIGRATION_GATE}x v1, got {geomean:.2}x"
        );
    }
    println!();

    let json = render_json(cfg, &kernels, &operators, &migration);
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_PR3.json");
    println!("Wrote {}", path.display());
}
