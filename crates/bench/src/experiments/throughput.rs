//! PR4 throughput — speed artifact extended with the `obs` metrics layer.
//!
//! Four layers are measured:
//!
//! * **Kernels**: `pack_words`/`unpack_words` (generic scalar) vs the
//!   width-specialized unrolled kernels vs the fused frame-of-reference
//!   variants, for every width 1..=64 on `BOS_N` uniformly-masked values.
//! * **Operators**: every [`PackerKind`] (the PFOR family plus the three
//!   BOS solvers) encoding/decoding the paper's datasets in 1024-value
//!   blocks — the block size the paper's experiments use. Since PR 4 each
//!   row carries the full timing spread (min/mean/max/stddev), not just
//!   the min point estimate.
//! * **Migration**: the frozen v1 bit-serial PFOR/FastPFOR/SimplePFOR
//!   baselines (`pfor::v1`, the PR 2 BitReader formats) against their v2
//!   word-packed replacements, same datasets and block size. The v2 decode
//!   must be at least [`MIGRATION_GATE`]× the v1 decode per codec.
//! * **Metrics** (new in PR 4): the `obs` instrumentation itself —
//!   per-solver candidate/prune tallies and the solver-search vs
//!   payload-packing wall-time split from the span registry, plus an
//!   obs-on/obs-off A/B overhead check. With metrics on, the kernel path
//!   must stay within [`OBS_OVERHEAD_GATE`], and toggling the runtime
//!   kill-switch must not change a single output byte.
//!
//! * **Solvers** (new in PR 8): every [`SolverKind`] encoding the gate
//!   dataset through a scratch-reusing [`bitpack::EncodeSession`], plus
//!   the PR 8 acceptance gate — the overhauled BOS-B search must be at
//!   least [`SOLVER_SPEEDUP_GATE`]× the frozen pre-overhaul reference
//!   (`bos::solver::reference`) while returning bit-identical
//!   `Solution`s block for block. This section also runs alone under
//!   `--quick` as part of the tier-1 recipe.
//!
//! Results are written to `BENCH_PR4.json` at the workspace root so later
//! PRs can diff their numbers against this artifact (`BENCH_PR3.json` from
//! the previous PR is kept untouched); the solver section writes its own
//! `BENCH_PR8.json`. Timings use [`time_best_of`] / [`time_stats`]
//! (warmup + min-of-`BOS_REPEATS`) for reproducibility.

use crate::harness::{time_best_of, time_stats, Config, Table, TimeStats};
use bitpack::codec::encode_blocks_parallel;
use bitpack::kernels::{pack_words, unpack_words};
use bitpack::unrolled::{
    pack_words_for, pack_words_unrolled, unpack_words_for, unpack_words_unrolled,
};
use bitpack::BlockCodec;
use bos::solver::reference;
use bos::{BitWidthSolver, BosCodec, Solver, SolverConfig, SolverKind, SolverScratch, ValueSolver};
use datasets::all_datasets;
use encodings::{IntPacker, PackerKind};
use std::path::PathBuf;

/// Block size used for the operator measurements (the paper's default).
const BLOCK: usize = 1024;

/// Reference used for the fused frame-of-reference kernel runs.
const FUSED_REF: i64 = -123_456_789;

/// The widths the acceptance gate covers: the unrolled unpack kernels must
/// beat the generic scalar kernel by [`GATE_SPEEDUP`]x in geomean over
/// these widths, and by [`GATE_WIDTH_FLOOR`]x on every single one.
const GATE_WIDTHS: std::ops::RangeInclusive<u32> = 1..=20;

/// Required *geomean* unpack speedup over [`GATE_WIDTHS`]. PR 2 gated the
/// per-width minimum at 2x, but on single-core hosts one width's ratio
/// swings +/-30% with binary layout alone, so the aggregate carries the
/// claim and a looser per-width floor catches real regressions.
const GATE_SPEEDUP: f64 = 2.0;

/// Required minimum per-width unpack speedup on [`GATE_WIDTHS`].
const GATE_WIDTH_FLOOR: f64 = 1.5;

/// Smallest `BOS_N` at which the speedup gate is enforced (below this a
/// timed run is about a microsecond and the ratio is mostly timer noise;
/// the default config of 30 000 is well above it).
const GATE_MIN_N: usize = 10_000;

/// Required minimum v2-over-v1 decode speedup (geomean across datasets)
/// for each migrated codec.
const MIGRATION_GATE: f64 = 1.5;

/// Required BOS-B search speedup over the frozen pre-overhaul reference
/// (`bos::solver::reference::bitwidth_solve`) on the gate dataset — the
/// PR 8 acceptance bar for the seeded-pruning / family-jump overhaul.
const SOLVER_SPEEDUP_GATE: f64 = 10.0;

/// Outlier share of the solver gate dataset: 1 value in 50 (2%).
const OUTLIER_DIVISOR: u64 = 50;

/// Maximum obs-on / obs-off time ratio allowed on the kernel unpack path
/// (the instrumentation never touches the kernels, so this documents that
/// the layer is free where it matters most; ≤ 5% leaves room for timer
/// noise). Enforced under the same release-build / `BOS_N` conditions as
/// the other gates.
const OBS_OVERHEAD_GATE: f64 = 1.05;

struct KernelRow {
    width: u32,
    pack_generic: f64,
    pack_unrolled: f64,
    pack_fused: f64,
    unpack_generic: f64,
    unpack_unrolled: f64,
    unpack_fused: f64,
}

impl KernelRow {
    fn unpack_speedup(&self) -> f64 {
        self.unpack_unrolled / self.unpack_generic
    }
}

struct OperatorRow {
    name: &'static str,
    dataset: &'static str,
    /// Encode throughput (values/s) from the fastest run.
    encode: f64,
    /// Decode throughput (values/s) from the fastest run.
    decode: f64,
    ratio: f64,
    /// Raw per-run encode timing spread (ns).
    encode_ns: TimeStats,
    /// Raw per-run decode timing spread (ns).
    decode_ns: TimeStats,
}

/// Search-effort and search-vs-pack split for one BOS solver, read back
/// from the `obs` registry after encoding one dataset.
struct SolverMetricsRow {
    name: &'static str,
    blocks: u64,
    candidates: u64,
    prunes: u64,
    search_ns: u64,
    pack_ns: u64,
}

impl SolverMetricsRow {
    /// Fraction of encode wall-time spent searching (vs packing).
    fn search_share(&self) -> f64 {
        let total = self.search_ns + self.pack_ns;
        if total == 0 {
            0.0
        } else {
            self.search_ns as f64 / total as f64
        }
    }
}

/// Obs-on vs obs-off A/B results.
struct Overhead {
    /// Kernel unpack time ratio (on/off) — gated at [`OBS_OVERHEAD_GATE`].
    kernel_ratio: f64,
    /// BOS-M driver encode time ratio (on/off) — reported, not gated (the
    /// driver path *is* instrumented, but solver cost dominates).
    driver_encode_ratio: f64,
    /// Whether the obs-off encode produced byte-identical output.
    byte_identical: bool,
}

struct MigrationRow {
    name: &'static str,
    dataset: &'static str,
    decode_v1: f64,
    decode_v2: f64,
    bytes_v1: usize,
    bytes_v2: usize,
}

impl MigrationRow {
    fn decode_speedup(&self) -> f64 {
        self.decode_v2 / self.decode_v1
    }
}

/// Values per second from a count and elapsed nanoseconds.
fn vps(n: usize, ns: f64) -> f64 {
    n as f64 / (ns.max(1.0) / 1e9)
}

pub(crate) fn masked_values(n: usize, w: u32) -> Vec<u64> {
    let mask = if w == 0 {
        0
    } else if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    };
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) & mask)
        .collect()
}

fn kernel_rows(cfg: &Config) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for w in 1..=64u32 {
        let deltas = masked_values(cfg.n, w);
        let originals: Vec<i64> = deltas
            .iter()
            .map(|&d| FUSED_REF.wrapping_add(d as i64))
            .collect();

        let mut buf = Vec::new();
        let (_, pack_generic_ns) = time_best_of(cfg.repeats, || {
            buf.clear();
            pack_words(&deltas, w, &mut buf);
        });
        let mut buf2 = Vec::new();
        let (_, pack_unrolled_ns) = time_best_of(cfg.repeats, || {
            buf2.clear();
            pack_words_unrolled(&deltas, w, &mut buf2);
        });
        assert_eq!(buf, buf2, "unrolled pack must be bit-identical (w = {w})");
        let mut buf3 = Vec::new();
        let (_, pack_fused_ns) = time_best_of(cfg.repeats, || {
            buf3.clear();
            pack_words_for(&originals, FUSED_REF, w, &mut buf3);
        });
        assert_eq!(buf, buf3, "fused pack must be bit-identical (w = {w})");

        let mut out = Vec::new();
        let (_, unpack_generic_ns) = time_best_of(cfg.repeats, || {
            out.clear();
            unpack_words(&buf, cfg.n, w, &mut out).expect("unpack");
        });
        let mut out2 = Vec::new();
        let (_, unpack_unrolled_ns) = time_best_of(cfg.repeats, || {
            out2.clear();
            unpack_words_unrolled(&buf, cfg.n, w, &mut out2).expect("unpack");
        });
        assert_eq!(out, out2, "unrolled unpack must match (w = {w})");
        let mut restored = Vec::new();
        let (_, unpack_fused_ns) = time_best_of(cfg.repeats, || {
            restored.clear();
            unpack_words_for(&buf, cfg.n, w, FUSED_REF, &mut restored).expect("unpack");
        });
        assert_eq!(restored, originals, "fused unpack must restore (w = {w})");

        rows.push(KernelRow {
            width: w,
            pack_generic: vps(cfg.n, pack_generic_ns),
            pack_unrolled: vps(cfg.n, pack_unrolled_ns),
            pack_fused: vps(cfg.n, pack_fused_ns),
            unpack_generic: vps(cfg.n, unpack_generic_ns),
            unpack_unrolled: vps(cfg.n, unpack_unrolled_ns),
            unpack_fused: vps(cfg.n, unpack_fused_ns),
        });
    }
    rows
}

fn operator_rows(cfg: &Config) -> Vec<OperatorRow> {
    let sets = all_datasets(cfg.n);
    let mut rows = Vec::new();
    for kind in PackerKind::ALL {
        let packer = kind.build();
        for dataset in &sets {
            let ints = dataset.as_scaled_ints();
            let mut buf = Vec::new();
            let (_, encode_ns) = time_stats(cfg.repeats, || {
                buf.clear();
                for block in ints.chunks(BLOCK) {
                    packer.encode(block, &mut buf);
                }
            });
            let blocks = ints.len().div_ceil(BLOCK).max(1);
            let mut out = Vec::new();
            let (_, decode_ns) = time_stats(cfg.repeats, || {
                out.clear();
                let mut pos = 0;
                for _ in 0..blocks {
                    packer.decode(&buf, &mut pos, &mut out).expect("decode");
                }
            });
            assert_eq!(out, ints, "{} roundtrip on {}", packer.name(), dataset.abbr);
            rows.push(OperatorRow {
                name: packer.name(),
                dataset: dataset.abbr,
                encode: vps(ints.len(), encode_ns.min),
                decode: vps(ints.len(), decode_ns.min),
                ratio: dataset.uncompressed_bytes() as f64 / buf.len() as f64,
                encode_ns,
                decode_ns,
            });
        }
    }
    rows
}

type V1Encode = fn(&[i64], &mut Vec<u8>);
type V1Decode = fn(&[u8], &mut usize, &mut Vec<i64>) -> bitpack::DecodeResult<()>;

/// The migrated codecs, paired with their frozen v1 implementations.
fn migrated() -> Vec<(&'static str, V1Encode, V1Decode, Box<dyn IntPacker>)> {
    vec![
        (
            "PFOR",
            pfor::v1::encode_pfor_v1 as V1Encode,
            pfor::v1::decode_pfor_v1 as V1Decode,
            Box::new(pfor::PforCodec::new()),
        ),
        (
            "FASTPFOR",
            pfor::v1::encode_fastpfor_v1,
            pfor::v1::decode_fastpfor_v1,
            Box::new(pfor::FastPforCodec::new()),
        ),
        (
            "SIMPLEPFOR",
            pfor::v1::encode_simplepfor_v1,
            pfor::v1::decode_simplepfor_v1,
            Box::new(pfor::SimplePforCodec::new()),
        ),
    ]
}

fn migration_rows(cfg: &Config) -> Vec<MigrationRow> {
    let sets = all_datasets(cfg.n);
    let mut rows = Vec::new();
    for (name, enc_v1, dec_v1, codec) in migrated() {
        for dataset in &sets {
            let ints = dataset.as_scaled_ints();
            let blocks = ints.len().div_ceil(BLOCK).max(1);

            let mut buf_v1 = Vec::new();
            for block in ints.chunks(BLOCK) {
                enc_v1(block, &mut buf_v1);
            }
            let mut out = Vec::new();
            let (_, v1_ns) = time_best_of(cfg.repeats, || {
                out.clear();
                let mut pos = 0;
                for _ in 0..blocks {
                    dec_v1(&buf_v1, &mut pos, &mut out).expect("v1 decode");
                }
            });
            assert_eq!(out, ints, "{name} v1 roundtrip on {}", dataset.abbr);

            let mut buf_v2 = Vec::new();
            for block in ints.chunks(BLOCK) {
                codec.encode(block, &mut buf_v2);
            }
            let (_, v2_ns) = time_best_of(cfg.repeats, || {
                out.clear();
                let mut pos = 0;
                for _ in 0..blocks {
                    codec
                        .decode(&buf_v2, &mut pos, &mut out)
                        .expect("v2 decode");
                }
            });
            assert_eq!(out, ints, "{name} v2 roundtrip on {}", dataset.abbr);

            rows.push(MigrationRow {
                name,
                dataset: dataset.abbr,
                decode_v1: vps(ints.len(), v1_ns),
                decode_v2: vps(ints.len(), v2_ns),
                bytes_v1: buf_v1.len(),
                bytes_v2: buf_v2.len(),
            });
        }
    }
    rows
}

/// Geomean decode speedup per codec, in [`migrated`] order.
fn migration_summary(rows: &[MigrationRow]) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    for (name, ..) in migrated() {
        let per: Vec<f64> = rows
            .iter()
            .filter(|r| r.name == name)
            .map(MigrationRow::decode_speedup)
            .collect();
        let geomean = (per.iter().map(|s| s.ln()).sum::<f64>() / per.len() as f64).exp();
        out.push((name, geomean));
    }
    out
}

/// The paper solvers (plus the PR 8 adaptive ladder) driven through the
/// shared parallel encode driver, with their `obs` metric label.
const SOLVER_KINDS: [(SolverKind, &str); 4] = [
    (SolverKind::Value, "BOS-V"),
    (SolverKind::BitWidth, "BOS-B"),
    (SolverKind::Median, "BOS-M"),
    (SolverKind::Adaptive, "BOS-A"),
];

/// Encodes every dataset once per BOS solver and reads the search-effort
/// tallies and the search/pack span split back from the `obs` registry.
///
/// Resets the registry per solver so the tallies are attributable; run
/// this *after* anything whose metrics should survive. Empty when the
/// `obs` feature is off.
fn solver_metrics_rows(cfg: &Config) -> Vec<SolverMetricsRow> {
    if !obs::enabled() {
        return Vec::new();
    }
    let sets = all_datasets(cfg.n);
    let mut rows = Vec::new();
    for (kind, label) in SOLVER_KINDS {
        obs::reset();
        let codec = BosCodec::new(kind);
        for dataset in &sets {
            let ints = dataset.as_scaled_ints();
            let mut buf = Vec::new();
            // threads = 1 keeps the spans on this thread; the tallies are
            // identical either way (the solver sees the same blocks).
            encode_blocks_parallel(&codec, &ints, BLOCK, 1, &mut buf).expect("encode");
        }
        let snap = obs::snapshot();
        rows.push(SolverMetricsRow {
            name: label,
            blocks: snap.counter(&format!("solver.{label}.blocks")),
            candidates: snap.counter(&format!("solver.{label}.candidates")),
            prunes: snap.counter(&format!("solver.{label}.prunes")),
            search_ns: snap
                .span(&format!("solver_search.{label}"))
                .map_or(0, |s| s.total_ns),
            pack_ns: snap
                .span(&format!("pack_payload.{label}"))
                .map_or(0, |s| s.total_ns),
        });
    }
    rows
}

/// Encode throughput for one solver kind on the gate dataset.
struct SolverEncodeRow {
    name: &'static str,
    /// Encode throughput (values/s) through a scratch-reusing session.
    encode: f64,
    bytes: usize,
}

/// Frozen-reference vs overhauled search timing for one solver.
struct SolverSpeedupRow {
    name: &'static str,
    /// Per-pass wall time of the frozen pre-overhaul search (ns).
    reference_ns: f64,
    /// Per-pass wall time of the overhauled search (ns).
    new_ns: f64,
}

impl SolverSpeedupRow {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.new_ns.max(1.0)
    }
}

/// Deterministic solver gate dataset: tight center (uniform `[0, 200)`)
/// with 2% outliers near ±2⁴⁰ — the distribution BOS targets, and the one
/// whose candidate ladders the PR 8 pruning cuts hardest. A fixed LCG
/// keeps the artifact reproducible run to run.
pub(crate) fn outlier_series(n: usize) -> Vec<i64> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let r = state >> 33;
            if r.is_multiple_of(OUTLIER_DIVISOR) {
                let magnitude = (1i64 << 40) + (r % 1000) as i64;
                if r & 2 == 0 {
                    magnitude
                } else {
                    -magnitude
                }
            } else {
                (r % 200) as i64
            }
        })
        .collect()
}

/// Times every [`SolverKind`] encoding the gate dataset through a
/// scratch-reusing [`bitpack::EncodeSession`] (the PR 8 encode path), and
/// verifies each stream decodes back to the input.
fn solver_encode_rows(cfg: &Config, series: &[i64]) -> Vec<SolverEncodeRow> {
    let mut rows = Vec::new();
    for kind in SolverKind::ALL {
        let codec = BosCodec::new(kind);
        let mut buf = Vec::new();
        let (_, ns) = time_best_of(cfg.repeats, || {
            buf.clear();
            let mut session = codec.encode_session();
            for block in series.chunks(BLOCK) {
                session.encode_block(block, &mut buf);
            }
        });
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < buf.len() {
            bos::decode(&buf, &mut pos, &mut out).expect("decode");
        }
        assert_eq!(
            out,
            series,
            "{} roundtrip on the gate dataset",
            kind.label()
        );
        rows.push(SolverEncodeRow {
            name: kind.label(),
            encode: vps(series.len(), ns),
            bytes: buf.len(),
        });
    }
    rows
}

/// Times the frozen pre-overhaul searches against the overhauled solvers
/// on the gate dataset, block by block, asserting the `Solution`s stay
/// bit-identical — the same-run comparison that carries the PR 8 claim
/// (both sides see the same machine, build, and data).
fn solver_speedup_rows(cfg: &Config, series: &[i64]) -> Vec<SolverSpeedupRow> {
    let full = SolverConfig::default();
    let mut rows = Vec::new();

    let mut expected = Vec::new();
    let (_, reference_ns) = time_best_of(cfg.repeats, || {
        expected.clear();
        for block in series.chunks(BLOCK) {
            expected.push(reference::bitwidth_solve(full, block));
        }
    });
    let mut got = Vec::new();
    let mut solver = BitWidthSolver::new();
    let mut scratch = SolverScratch::new();
    let (_, new_ns) = time_best_of(cfg.repeats, || {
        got.clear();
        for block in series.chunks(BLOCK) {
            got.push(solver.solve_into(block, &mut scratch));
        }
    });
    assert_eq!(
        got, expected,
        "overhauled BOS-B must stay bit-identical to the frozen reference"
    );
    rows.push(SolverSpeedupRow {
        name: "BOS-B",
        reference_ns,
        new_ns,
    });

    let mut expected = Vec::new();
    let (_, reference_ns) = time_best_of(cfg.repeats, || {
        expected.clear();
        for block in series.chunks(BLOCK) {
            expected.push(reference::value_solve(full, block));
        }
    });
    let mut got = Vec::new();
    let mut solver = ValueSolver::new();
    let mut scratch = SolverScratch::new();
    let (_, new_ns) = time_best_of(cfg.repeats, || {
        got.clear();
        for block in series.chunks(BLOCK) {
            got.push(solver.solve_into(block, &mut scratch));
        }
    });
    assert_eq!(
        got, expected,
        "overhauled BOS-V must stay bit-identical to the frozen reference"
    );
    rows.push(SolverSpeedupRow {
        name: "BOS-V",
        reference_ns,
        new_ns,
    });

    rows
}

/// Renders the PR 8 solver artifact.
fn render_pr8_json(
    cfg: &Config,
    encode_rows: &[SolverEncodeRow],
    speedup_rows: &[SolverSpeedupRow],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"bench\": \"PR8 solver-search overhaul: scratch-reusing sessions, \
         seeded pruning, adaptive ladder\",\n",
    );
    s.push_str(&format!(
        "  \"config\": {{ \"n\": {}, \"repeats\": {}, \"block\": {}, \
         \"outlier_pct\": {:.1} }},\n",
        cfg.n,
        cfg.repeats,
        BLOCK,
        100.0 / OUTLIER_DIVISOR as f64
    ));
    s.push_str("  \"solver_encode\": [\n");
    for (i, r) in encode_rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"encode\": {}, \"bytes\": {} }}{}\n",
            r.name,
            jnum(r.encode),
            r.bytes,
            if i + 1 < encode_rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"solver_speedup\": [\n");
    for (i, r) in speedup_rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"reference_ns\": {:.0}, \"new_ns\": {:.0}, \
             \"speedup\": {:.2}, \"bit_identical\": true }}{}\n",
            r.name,
            r.reference_ns,
            r.new_ns,
            r.speedup(),
            if i + 1 < speedup_rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"gate\": {{ \"solver\": \"BOS-B\", \"min_speedup\": {SOLVER_SPEEDUP_GATE} }}\n"
    ));
    s.push_str("}\n");
    s
}

/// Workspace-root path for the PR 8 solver artifact.
fn pr8_output_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("BENCH_PR8.json")
}

/// Runs the PR 8 solver section: per-solver encode throughput through
/// scratch-reusing sessions, then the frozen-reference speedup gate.
/// Writes `BENCH_PR8.json`.
fn solver_section(cfg: &Config) {
    let series = outlier_series(cfg.n);

    let encode_rows = solver_encode_rows(cfg, &series);
    println!(
        "Solver encode throughput (million values/s, scratch-reusing \
         sessions, 2% outlier dataset):"
    );
    let mut table = Table::new(["solver", "encode", "bytes"]);
    for r in &encode_rows {
        table.row([r.name.to_string(), fmt_mvps(r.encode), r.bytes.to_string()]);
    }
    table.print();
    println!();

    let speedup_rows = solver_speedup_rows(cfg, &series);
    println!("Solver search vs frozen pre-overhaul reference (bit-identical solutions):");
    let mut table = Table::new(["solver", "reference ms", "new ms", "speedup"]);
    for r in &speedup_rows {
        table.row([
            r.name.to_string(),
            format!("{:.2}", r.reference_ns / 1e6),
            format!("{:.2}", r.new_ns / 1e6),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    table.print();
    let bosb = speedup_rows
        .iter()
        .find(|r| r.name == "BOS-B")
        .expect("BOS-B row present");
    println!(
        "BOS-B search speedup: {:.2}x (gate: >= {SOLVER_SPEEDUP_GATE}x)",
        bosb.speedup()
    );
    if cfg!(debug_assertions) {
        println!("(debug build: solver speedup gate reported but not enforced)");
    } else if cfg.n < GATE_MIN_N {
        println!("(BOS_N < {GATE_MIN_N}: solver speedup gate reported but not enforced)");
    } else {
        assert!(
            bosb.speedup() >= SOLVER_SPEEDUP_GATE,
            "overhauled BOS-B search must be >= {SOLVER_SPEEDUP_GATE}x the frozen \
             reference, got {:.2}x",
            bosb.speedup()
        );
    }
    println!();

    let json = render_pr8_json(cfg, &encode_rows, &speedup_rows);
    let path = pr8_output_path();
    std::fs::write(&path, &json).expect("write BENCH_PR8.json");
    println!("Wrote {}", path.display());
}

/// A/B comparison with the runtime kill-switch: kernel unpack and BOS-M
/// driver encode timed obs-on vs obs-off, plus the byte-identity check.
/// `None` when the `obs` feature is compiled out (nothing to toggle).
fn overhead_check(cfg: &Config) -> Option<Overhead> {
    if !obs::enabled() {
        return None;
    }
    // Kernel path: width-13 unpack, the same shape the speedup gate times.
    let deltas = masked_values(cfg.n, 13);
    let mut packed = Vec::new();
    pack_words_unrolled(&deltas, 13, &mut packed);
    let mut out = Vec::new();
    let mut time_unpack = |repeats| {
        let (_, ns) = time_best_of(repeats, || {
            out.clear();
            unpack_words_unrolled(&packed, deltas.len(), 13, &mut out).expect("unpack");
        });
        ns
    };
    // Alternate on/off rounds and keep the per-state minimum: the paths
    // under test run in hundreds of microseconds, so a single ordered
    // A-then-B measurement confounds the toggle with scheduler/cache
    // drift and can misreport the ratio by tens of percent.
    let mut kernel_on = f64::MAX;
    let mut kernel_off = f64::MAX;
    for _ in 0..3 {
        obs::set_enabled(true);
        kernel_on = kernel_on.min(time_unpack(cfg.repeats));
        obs::set_enabled(false);
        kernel_off = kernel_off.min(time_unpack(cfg.repeats));
    }
    obs::set_enabled(true);

    // Driver path: BOS-M through the instrumented parallel driver (single
    // thread, so only the metering itself differs between runs).
    let sets = all_datasets(cfg.n);
    let ints = sets.first().expect("datasets nonempty").as_scaled_ints();
    let codec = BosCodec::new(SolverKind::Median);
    let mut buf_on = Vec::new();
    let mut buf_off = Vec::new();
    let mut driver_on = f64::MAX;
    let mut driver_off = f64::MAX;
    for _ in 0..3 {
        obs::set_enabled(true);
        let (_, ns) = time_best_of(cfg.repeats, || {
            buf_on.clear();
            encode_blocks_parallel(&codec, &ints, BLOCK, 1, &mut buf_on).expect("encode");
        });
        driver_on = driver_on.min(ns);
        obs::set_enabled(false);
        let (_, ns) = time_best_of(cfg.repeats, || {
            buf_off.clear();
            encode_blocks_parallel(&codec, &ints, BLOCK, 1, &mut buf_off).expect("encode");
        });
        driver_off = driver_off.min(ns);
    }
    obs::set_enabled(true);

    Some(Overhead {
        kernel_ratio: kernel_on / kernel_off.max(1.0),
        driver_encode_ratio: driver_on / driver_off.max(1.0),
        byte_identical: buf_on == buf_off,
    })
}

fn fmt_mvps(v: f64) -> String {
    format!("{:.1}", v / 1e6)
}

/// One JSON number with sane formatting (no NaN/inf can reach here).
fn jnum(v: f64) -> String {
    format!("{v:.1}")
}

/// One JSON object for a [`TimeStats`] spread (integer ns — sub-ns
/// resolution is below the timer's).
fn jstats(t: &TimeStats) -> String {
    format!(
        "{{ \"min\": {:.0}, \"mean\": {:.0}, \"max\": {:.0}, \"stddev\": {:.0} }}",
        t.min, t.mean, t.max, t.stddev
    )
}

fn render_json(
    cfg: &Config,
    kernels: &[KernelRow],
    operators: &[OperatorRow],
    migration: &[MigrationRow],
    metrics: &[SolverMetricsRow],
    overhead: Option<&Overhead>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"PR4 throughput: obs metrics layer over the PR3 speed artifact\",\n");
    s.push_str("  \"units\": \"values_per_second\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"n\": {}, \"repeats\": {}, \"block\": {} }},\n",
        cfg.n, cfg.repeats, BLOCK
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"width\": {}, \"pack_generic\": {}, \"pack_unrolled\": {}, \
             \"pack_fused\": {}, \"unpack_generic\": {}, \"unpack_unrolled\": {}, \
             \"unpack_fused\": {}, \"unpack_speedup\": {} }}{}\n",
            r.width,
            jnum(r.pack_generic),
            jnum(r.pack_unrolled),
            jnum(r.pack_fused),
            jnum(r.unpack_generic),
            jnum(r.unpack_unrolled),
            jnum(r.unpack_fused),
            format_args!("{:.2}", r.unpack_speedup()),
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let gate: Vec<&KernelRow> = kernels
        .iter()
        .filter(|r| GATE_WIDTHS.contains(&r.width))
        .collect();
    let min_speedup = gate
        .iter()
        .map(|r| r.unpack_speedup())
        .fold(f64::INFINITY, f64::min);
    let geomean =
        (gate.iter().map(|r| r.unpack_speedup().ln()).sum::<f64>() / gate.len() as f64).exp();
    s.push_str(&format!(
        "  \"kernel_summary\": {{ \"gate_widths\": \"1..=20\", \
         \"min_unpack_speedup\": {:.2}, \"geomean_unpack_speedup\": {:.2} }},\n",
        min_speedup, geomean
    ));
    s.push_str("  \"operators\": [\n");
    for (i, r) in operators.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"dataset\": \"{}\", \"encode\": {}, \
             \"decode\": {}, \"ratio\": {}, \"encode_ns\": {}, \"decode_ns\": {} }}{}\n",
            r.name,
            r.dataset,
            jnum(r.encode),
            jnum(r.decode),
            format_args!("{:.2}", r.ratio),
            jstats(&r.encode_ns),
            jstats(&r.decode_ns),
            if i + 1 < operators.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"migration\": [\n");
    for (i, r) in migration.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"dataset\": \"{}\", \"decode_v1\": {}, \
             \"decode_v2\": {}, \"decode_speedup\": {}, \"bytes_v1\": {}, \
             \"bytes_v2\": {} }}{}\n",
            r.name,
            r.dataset,
            jnum(r.decode_v1),
            jnum(r.decode_v2),
            format_args!("{:.2}", r.decode_speedup()),
            r.bytes_v1,
            r.bytes_v2,
            if i + 1 < migration.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let summary = migration_summary(migration);
    s.push_str("  \"migration_summary\": {\n");
    s.push_str(&format!("    \"gate\": {MIGRATION_GATE},\n"));
    for (i, (name, geomean)) in summary.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {:.2}{}\n",
            geomean,
            if i + 1 < summary.len() { "," } else { "" }
        ));
    }
    s.push_str("  },\n");
    s.push_str("  \"metrics\": {\n");
    s.push_str(&format!("    \"obs_enabled\": {},\n", obs::enabled()));
    s.push_str("    \"solvers\": [\n");
    for (i, r) in metrics.iter().enumerate() {
        s.push_str(&format!(
            "      {{ \"name\": \"{}\", \"blocks\": {}, \"candidates\": {}, \
             \"prunes\": {}, \"solver_search_ns\": {}, \"pack_payload_ns\": {}, \
             \"search_share\": {} }}{}\n",
            r.name,
            r.blocks,
            r.candidates,
            r.prunes,
            r.search_ns,
            r.pack_ns,
            format_args!("{:.3}", r.search_share()),
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    s.push_str("    ],\n");
    match overhead {
        Some(o) => s.push_str(&format!(
            "    \"overhead\": {{ \"gate\": {OBS_OVERHEAD_GATE}, \"kernel_ratio\": {:.3}, \
             \"driver_encode_ratio\": {:.3}, \"byte_identical_runtime_toggle\": {} }}\n",
            o.kernel_ratio, o.driver_encode_ratio, o.byte_identical
        )),
        None => s.push_str("    \"overhead\": null\n"),
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Workspace-root path for the artifact.
fn output_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("BENCH_PR4.json")
}

/// Runs only the PR 8 solver section (the tier-1 `--quick` recipe):
/// per-solver encode throughput, the frozen-reference speedup gate, and
/// `BENCH_PR8.json` — skipping the kernel/operator/migration sweeps.
pub fn run_quick(cfg: &Config) {
    super::banner(
        "PR8 solver throughput (quick): sessions, pruning gate (values/s)",
        cfg,
    );
    solver_section(cfg);
}

/// Runs the experiment and writes `BENCH_PR4.json` + `BENCH_PR8.json`.
pub fn run(cfg: &Config) {
    super::banner(
        "PR4 throughput: kernels, operators, migration, and obs metrics (values/s)",
        cfg,
    );

    let kernels = kernel_rows(cfg);
    println!("Kernel throughput (million values/s), generic vs unrolled vs fused:");
    let mut table = Table::new([
        "width",
        "pack gen",
        "pack unr",
        "pack fused",
        "unpack gen",
        "unpack unr",
        "unpack fused",
        "unpack x",
    ]);
    for r in &kernels {
        table.row([
            r.width.to_string(),
            fmt_mvps(r.pack_generic),
            fmt_mvps(r.pack_unrolled),
            fmt_mvps(r.pack_fused),
            fmt_mvps(r.unpack_generic),
            fmt_mvps(r.unpack_unrolled),
            fmt_mvps(r.unpack_fused),
            format!("{:.2}", r.unpack_speedup()),
        ]);
    }
    table.print();
    println!();

    let gate: Vec<&KernelRow> = kernels
        .iter()
        .filter(|r| GATE_WIDTHS.contains(&r.width))
        .collect();
    let min_speedup = gate
        .iter()
        .map(|r| r.unpack_speedup())
        .fold(f64::INFINITY, f64::min);
    let geomean_speedup =
        (gate.iter().map(|r| r.unpack_speedup().ln()).sum::<f64>() / gate.len() as f64).exp();
    println!(
        "Unpack speedup over widths {}..={}: geomean {geomean_speedup:.2}x \
         (gate: >= {GATE_SPEEDUP}x), min {min_speedup:.2}x (floor: >= {GATE_WIDTH_FLOOR}x)",
        GATE_WIDTHS.start(),
        GATE_WIDTHS.end()
    );
    // The gate is only meaningful on optimized builds — in debug the
    // "unrolled" loop is not unrolled at all — and with enough values per
    // timed run for the ratio to rise above timer noise (a few thousand
    // values unpack in ~1 µs).
    if cfg!(debug_assertions) {
        println!("(debug build: speedup gate reported but not enforced)");
    } else if cfg.n < GATE_MIN_N {
        println!("(BOS_N < {GATE_MIN_N}: speedup gate reported but not enforced)");
    } else {
        assert!(
            geomean_speedup >= GATE_SPEEDUP,
            "unrolled unpack must average >= {GATE_SPEEDUP}x generic on widths 1..=20, got {geomean_speedup:.2}x"
        );
        assert!(
            min_speedup >= GATE_WIDTH_FLOOR,
            "every width in 1..=20 must unpack >= {GATE_WIDTH_FLOOR}x generic, got {min_speedup:.2}x"
        );
    }
    println!();

    let operators = operator_rows(cfg);
    println!(
        "Operator throughput (million values/s, from fastest of {} runs), \
         1024-value blocks; spread = decode stddev/mean:",
        cfg.repeats
    );
    let mut table = Table::new(["operator", "dataset", "encode", "decode", "ratio", "spread"]);
    for r in &operators {
        let spread = if r.decode_ns.mean > 0.0 {
            r.decode_ns.stddev / r.decode_ns.mean
        } else {
            0.0
        };
        table.row([
            r.name.to_string(),
            r.dataset.to_string(),
            fmt_mvps(r.encode),
            fmt_mvps(r.decode),
            format!("{:.2}", r.ratio),
            format!("{:.1}%", spread * 100.0),
        ]);
    }
    table.print();
    println!();

    let migration = migration_rows(cfg);
    println!("Migration: frozen v1 bit-serial decode vs v2 word-packed decode:");
    let mut table = Table::new([
        "codec",
        "dataset",
        "v1 decode",
        "v2 decode",
        "speedup",
        "v1 bytes",
        "v2 bytes",
    ]);
    for r in &migration {
        table.row([
            r.name.to_string(),
            r.dataset.to_string(),
            fmt_mvps(r.decode_v1),
            fmt_mvps(r.decode_v2),
            format!("{:.2}", r.decode_speedup()),
            r.bytes_v1.to_string(),
            r.bytes_v2.to_string(),
        ]);
    }
    table.print();
    println!();
    for (name, geomean) in migration_summary(&migration) {
        println!("{name}: geomean v2/v1 decode speedup {geomean:.2}x (gate: >= {MIGRATION_GATE}x)");
        if cfg!(debug_assertions) || cfg.n < GATE_MIN_N {
            continue; // same noise rationale as the kernel gate above
        }
        assert!(
            geomean >= MIGRATION_GATE,
            "{name}: v2 decode must be >= {MIGRATION_GATE}x v1, got {geomean:.2}x"
        );
    }
    println!();

    // Overhead A/B first (it flips the kill-switch), then the solver
    // metrics pass, which resets the registry per solver — order matters.
    let overhead = overhead_check(cfg);
    let metrics = solver_metrics_rows(cfg);
    if metrics.is_empty() {
        println!("obs feature off: metrics section empty");
    } else {
        println!("BOS solver search effort and search-vs-pack split (obs registry):");
        let mut table = Table::new([
            "solver",
            "blocks",
            "candidates",
            "prunes",
            "search ms",
            "pack ms",
            "search %",
        ]);
        for r in &metrics {
            table.row([
                r.name.to_string(),
                r.blocks.to_string(),
                r.candidates.to_string(),
                r.prunes.to_string(),
                format!("{:.2}", r.search_ns as f64 / 1e6),
                format!("{:.2}", r.pack_ns as f64 / 1e6),
                format!("{:.1}%", r.search_share() * 100.0),
            ]);
        }
        table.print();
        println!();
    }
    if let Some(o) = &overhead {
        println!(
            "obs overhead: kernel unpack on/off {:.3}x (gate: <= {OBS_OVERHEAD_GATE}x), \
             BOS-M driver encode on/off {:.3}x, byte-identical across toggle: {}",
            o.kernel_ratio, o.driver_encode_ratio, o.byte_identical
        );
        assert!(
            o.byte_identical,
            "toggling the obs kill-switch must not change encoded bytes"
        );
        if !cfg!(debug_assertions) && cfg.n >= GATE_MIN_N {
            assert!(
                o.kernel_ratio <= OBS_OVERHEAD_GATE,
                "obs-on kernel unpack must stay within {OBS_OVERHEAD_GATE}x of obs-off, \
                 got {:.3}x",
                o.kernel_ratio
            );
        }
        println!();
    }

    let json = render_json(
        cfg,
        &kernels,
        &operators,
        &migration,
        &metrics,
        overhead.as_ref(),
    );
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_PR4.json");
    println!("Wrote {}", path.display());
    println!();

    solver_section(cfg);
}
