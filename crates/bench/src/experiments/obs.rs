//! PR9 observability — the flight-recorder acceptance artifact.
//!
//! Three claims are measured and gated, then written to `BENCH_PR9.json`:
//!
//! * **Overhead**: with the trail recorder at default capacity and
//!   sampling, the kernel unpack path must stay within
//!   [`KERNEL_OVERHEAD_GATE`] of the recorder-off time (the recorder
//!   never touches the kernels, so this documents that the layer is free
//!   where it matters most), and the full BOS-A encode pipeline — which
//!   *does* emit per-block provenance events — must stay within
//!   [`PIPELINE_OVERHEAD_GATE`]. Both A/Bs alternate on/off rounds and
//!   keep per-state minima, the same discipline as the PR 4 gate.
//! * **Transparency**: toggling the recorder must not change a single
//!   output byte, and re-encoding a fixed input must produce the exact
//!   same per-label event counts (the trail is deterministic provenance,
//!   not a best-effort log).
//! * **Export sanity**: the drained trail renders to a non-empty Chrome
//!   `trace_event` array carrying the required `ph`/`ts`/`pid`/`tid`/
//!   `name` fields (the structural round-trip lives in
//!   `tests/trail_trace.rs`; this keeps the artifact honest about size).
//!
//! The artifact also records `p50/p90/p99` for the key shape histograms
//! (separated widths, partition sizes, worker wall-time) using the PR 9
//! bucket-interpolated percentiles, so later PRs can diff distribution
//! shifts, not just totals. The whole experiment is cheap enough that
//! `--quick` runs all of it; it is part of the tier-1 recipe.

use crate::harness::{time_best_of, Config};
use bitpack::codec::encode_blocks_parallel;
use bitpack::unrolled::{pack_words_unrolled, unpack_words_unrolled};
use bos::{BosCodec, SolverKind};
use std::path::PathBuf;

use super::throughput::{masked_values, outlier_series};

/// Block size for the pipeline runs (the paper's default).
const BLOCK: usize = 1024;

/// Maximum recorder-on / recorder-off time ratio on the kernel unpack
/// path (PR 9 acceptance bar; the recorder never runs there).
const KERNEL_OVERHEAD_GATE: f64 = 1.05;

/// Maximum recorder-on / recorder-off time ratio on the full BOS-A
/// encode pipeline, which emits one provenance event per block plus the
/// adaptive verdicts (PR 9 acceptance bar).
const PIPELINE_OVERHEAD_GATE: f64 = 1.10;

/// Smallest `BOS_N` at which the ratio gates are enforced — below this a
/// timed run is about a microsecond and the ratio is mostly timer noise.
const GATE_MIN_N: usize = 10_000;

/// Alternating on/off rounds per A/B (min of each state is kept).
const AB_ROUNDS: usize = 3;

/// Extra rounds/repeats floor for the kernel A/B: one unpack run is tens
/// of microseconds, so the on/off ratio needs more samples than the
/// millisecond-scale pipeline A/B before the minima converge.
const KERNEL_AB_ROUNDS: usize = 7;

/// Minimum timing repetitions per kernel round (see above).
const KERNEL_MIN_REPEATS: usize = 9;

/// Kernel width used for the unpack A/B (same shape as the PR 2 gate).
const KERNEL_WIDTH: u32 = 13;

/// Worker threads for the determinism pass — two, so the parallel
/// driver's dispatch/join provenance is part of the counted stream.
const DETERMINISM_THREADS: usize = 2;

/// One A/B measurement: recorder-on vs recorder-off minima.
struct AbTimes {
    on_ns: f64,
    off_ns: f64,
}

impl AbTimes {
    fn ratio(&self) -> f64 {
        self.on_ns / self.off_ns.max(1.0)
    }
}

/// Kernel unpack A/B: the recorder has no hook on this path, so the
/// ratio is pure measurement noise — which is exactly the claim.
fn kernel_ab(cfg: &Config) -> AbTimes {
    let deltas = masked_values(cfg.n, KERNEL_WIDTH);
    let mut packed = Vec::new();
    pack_words_unrolled(&deltas, KERNEL_WIDTH, &mut packed);
    let mut out = Vec::new();
    let repeats = cfg.repeats.max(KERNEL_MIN_REPEATS);
    let mut time_unpack = || {
        let (_, ns) = time_best_of(repeats, || {
            out.clear();
            unpack_words_unrolled(&packed, deltas.len(), KERNEL_WIDTH, &mut out).expect("unpack");
        });
        ns
    };
    let mut on = f64::MAX;
    let mut off = f64::MAX;
    for _ in 0..KERNEL_AB_ROUNDS {
        obs::trail::set_recording(true);
        on = on.min(time_unpack());
        obs::trail::set_recording(false);
        off = off.min(time_unpack());
    }
    obs::trail::set_recording(true);
    obs::trail::drain();
    AbTimes {
        on_ns: on,
        off_ns: off,
    }
}

/// Full-pipeline A/B: BOS-A (the chattiest solver — it emits a verdict
/// per block on top of the block events) through the shared encode
/// driver, recorder on vs off, asserting byte-identical output.
fn pipeline_ab(cfg: &Config, series: &[i64]) -> (AbTimes, bool) {
    let codec = BosCodec::new(SolverKind::Adaptive);
    let mut buf_on = Vec::new();
    let mut buf_off = Vec::new();
    let mut on = f64::MAX;
    let mut off = f64::MAX;
    for _ in 0..AB_ROUNDS {
        obs::trail::set_recording(true);
        let (_, ns) = time_best_of(cfg.repeats, || {
            buf_on.clear();
            encode_blocks_parallel(&codec, series, BLOCK, 1, &mut buf_on).expect("encode");
        });
        on = on.min(ns);
        obs::trail::set_recording(false);
        let (_, ns) = time_best_of(cfg.repeats, || {
            buf_off.clear();
            encode_blocks_parallel(&codec, series, BLOCK, 1, &mut buf_off).expect("encode");
        });
        off = off.min(ns);
    }
    obs::trail::set_recording(true);
    obs::trail::drain();
    (
        AbTimes {
            on_ns: on,
            off_ns: off,
        },
        buf_on == buf_off,
    )
}

/// Per-label event totals from one drained trail.
type EventCounts = Vec<(&'static str, u64)>;

/// Encodes the fixed series twice, draining the trail after each pass,
/// and returns the two per-label count vectors plus the second trail's
/// chrome-trace export size (for the artifact).
fn determinism_check(series: &[i64]) -> (EventCounts, EventCounts, usize) {
    let codec = BosCodec::new(SolverKind::Adaptive);
    // The recorder ring may hold leftovers from the A/B warm-ups; a
    // drain isolates the counted stream to exactly one encode each.
    obs::trail::drain();
    let encode_once = || {
        let mut buf = Vec::new();
        encode_blocks_parallel(&codec, series, BLOCK, DETERMINISM_THREADS, &mut buf)
            .expect("encode");
        obs::trail::drain()
    };
    let first = encode_once();
    let second = encode_once();
    let chrome = obs::trail::to_chrome_trace(&second);
    assert!(
        !second.is_empty() && chrome.starts_with('['),
        "recorder-on encode must leave a non-empty chrome-exportable trail"
    );
    (first.counts(), second.counts(), chrome.len())
}

/// Key shape histograms reported with percentiles in the artifact.
const PERCENTILE_HISTOGRAMS: [&str; 4] = [
    "bos.separated.alpha",
    "bos.separated.nu",
    "driver.parallel.worker_blocks",
    "driver.parallel.worker_ns",
];

/// `(name, p50, p90, p99)` for every present [`PERCENTILE_HISTOGRAMS`].
fn percentile_rows(snap: &obs::Snapshot) -> Vec<(&'static str, f64, f64, f64)> {
    PERCENTILE_HISTOGRAMS
        .iter()
        .filter_map(|&name| {
            snap.histogram(name)
                .map(|h| (name, h.p50(), h.p90(), h.p99()))
        })
        .collect()
}

/// Determinism-section results bundled for [`render_json`].
struct EventsReport<'a> {
    counts: &'a [(&'static str, u64)],
    deterministic: bool,
    chrome_bytes: usize,
}

fn render_json(
    cfg: &Config,
    kernel: &AbTimes,
    pipeline: &AbTimes,
    byte_identical: bool,
    events: &EventsReport<'_>,
    percentiles: &[(&'static str, f64, f64, f64)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"bench\": \"PR9 flight recorder: trail overhead, determinism, \
         chrome-trace export\",\n",
    );
    s.push_str(&format!(
        "  \"config\": {{ \"n\": {}, \"repeats\": {}, \"block\": {}, \
         \"sampling\": {}, \"ab_rounds\": {} }},\n",
        cfg.n,
        cfg.repeats,
        BLOCK,
        obs::trail::sampling(),
        AB_ROUNDS
    ));
    s.push_str(&format!(
        "  \"kernel\": {{ \"gate\": {KERNEL_OVERHEAD_GATE}, \"on_ns\": {:.0}, \
         \"off_ns\": {:.0}, \"ratio\": {:.3} }},\n",
        kernel.on_ns,
        kernel.off_ns,
        kernel.ratio()
    ));
    s.push_str(&format!(
        "  \"pipeline\": {{ \"gate\": {PIPELINE_OVERHEAD_GATE}, \"on_ns\": {:.0}, \
         \"off_ns\": {:.0}, \"ratio\": {:.3}, \"byte_identical\": {byte_identical} }},\n",
        pipeline.on_ns,
        pipeline.off_ns,
        pipeline.ratio()
    ));
    let total: u64 = events.counts.iter().map(|&(_, n)| n).sum();
    s.push_str(&format!(
        "  \"events\": {{ \"deterministic\": {}, \"total\": {total}, \
         \"chrome_trace_bytes\": {}, \"counts\": {{\n",
        events.deterministic, events.chrome_bytes
    ));
    for (i, (label, n)) in events.counts.iter().enumerate() {
        s.push_str(&format!(
            "    \"{label}\": {n}{}\n",
            if i + 1 < events.counts.len() { "," } else { "" }
        ));
    }
    s.push_str("  } },\n");
    s.push_str("  \"histogram_percentiles\": [\n");
    for (i, (name, p50, p90, p99)) in percentiles.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"p50\": {p50:.1}, \"p90\": {p90:.1}, \
             \"p99\": {p99:.1} }}{}\n",
            if i + 1 < percentiles.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Workspace-root path for the artifact.
fn output_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("BENCH_PR9.json")
}

/// Runs the PR 9 recorder acceptance suite and writes `BENCH_PR9.json`.
/// Cheap enough that `--quick` (tier-1) runs everything.
pub fn run(cfg: &Config) {
    super::banner("PR9 flight recorder: overhead, determinism, export", cfg);
    if !obs::enabled() {
        println!("obs feature off: recorder inert, nothing to measure");
        return;
    }

    let kernel = kernel_ab(cfg);
    println!(
        "kernel unpack (w = {KERNEL_WIDTH}): recorder on/off {:.3}x \
         (gate: <= {KERNEL_OVERHEAD_GATE}x)",
        kernel.ratio()
    );

    let series = outlier_series(cfg.n);
    let (pipeline, byte_identical) = pipeline_ab(cfg, &series);
    println!(
        "BOS-A encode pipeline: recorder on/off {:.3}x (gate: <= \
         {PIPELINE_OVERHEAD_GATE}x), byte-identical across toggle: {byte_identical}",
        pipeline.ratio()
    );
    assert!(
        byte_identical,
        "toggling the trail recorder must not change encoded bytes"
    );

    let (first, second, chrome_bytes) = determinism_check(&series);
    let deterministic = first == second;
    let total: u64 = second.iter().map(|&(_, n)| n).sum();
    println!(
        "determinism: {} labels, {total} events per encode, counts stable \
         across re-encode: {deterministic}",
        second.len()
    );
    for (label, n) in &second {
        println!("  {label:<24} {n}");
    }
    assert!(
        deterministic,
        "re-encoding a fixed input must produce identical event counts: \
         {first:?} vs {second:?}"
    );
    println!("chrome-trace export: {chrome_bytes} bytes");

    let snap = obs::snapshot();
    let percentiles = percentile_rows(&snap);
    for (name, p50, p90, p99) in &percentiles {
        println!("  {name:<30} p50 {p50:.1}  p90 {p90:.1}  p99 {p99:.1}");
    }
    println!();

    // Same enforcement rule as every other timing gate in the suite: the
    // ratios only mean anything on optimized builds with enough work per
    // timed run to rise above timer noise.
    if cfg!(debug_assertions) {
        println!("(debug build: overhead gates reported but not enforced)");
    } else if cfg.n < GATE_MIN_N {
        println!("(BOS_N < {GATE_MIN_N}: overhead gates reported but not enforced)");
    } else {
        assert!(
            kernel.ratio() <= KERNEL_OVERHEAD_GATE,
            "recorder-on kernel unpack must stay within {KERNEL_OVERHEAD_GATE}x \
             of recorder-off, got {:.3}x",
            kernel.ratio()
        );
        assert!(
            pipeline.ratio() <= PIPELINE_OVERHEAD_GATE,
            "recorder-on BOS-A pipeline must stay within {PIPELINE_OVERHEAD_GATE}x \
             of recorder-off, got {:.3}x",
            pipeline.ratio()
        );
    }

    let json = render_json(
        cfg,
        &kernel,
        &pipeline,
        byte_identical,
        &EventsReport {
            counts: &second,
            deterministic,
            chrome_bytes,
        },
        &percentiles,
    );
    let path = output_path();
    std::fs::write(&path, &json).expect("write BENCH_PR9.json");
    println!("Wrote {}", path.display());
}
