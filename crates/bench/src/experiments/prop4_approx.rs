//! Proposition 4 — BOS-M's approximation ratio on normal data.
//!
//! For `X ~ N(µ, σ²)` the paper bounds `ρ = C_approx / C_opt` by 2 when
//! `σ ≤ 5/3` and by `⌈log2(3σ − 1)⌉` otherwise (with probability 0.997).
//! This experiment sweeps σ, measures ρ empirically and checks the bound.

use crate::harness::{Config, Table};
use bos::{BitWidthSolver, MedianSolver, Solver};
use datasets::synth::Synth;

/// The paper's bound for a given σ (re-exported from the library).
pub fn bound(sigma: f64) -> f64 {
    bos::theory::median_approx_bound(sigma)
}

/// Empirical ρ over `trials` normal blocks of `n` values.
pub fn measure_rho(sigma: f64, n: usize, trials: usize, seed: u64) -> f64 {
    let mut worst: f64 = 1.0;
    let exact = BitWidthSolver::new();
    let approx = MedianSolver::new();
    for t in 0..trials {
        let mut s = Synth::new(seed.wrapping_add(t as u64));
        let values: Vec<i64> = (0..n)
            .map(|_| s.gaussian(0.0, sigma).round() as i64)
            .collect();
        let opt = exact.solve_values(&values).cost_bits().max(1);
        let med = approx.solve_values(&values).cost_bits();
        worst = worst.max(med as f64 / opt as f64);
    }
    worst
}

/// Runs the experiment.
pub fn run(cfg: &Config) {
    super::banner(
        "Proposition 4: BOS-M approximation ratio on N(0, σ²) data",
        cfg,
    );
    let mut table = Table::new(["σ", "worst ρ", "bound", "within bound"]);
    let mut all_ok = true;
    for sigma in [
        0.5,
        1.0,
        5.0 / 3.0,
        2.0,
        4.0,
        8.0,
        16.0,
        64.0,
        256.0,
        1024.0,
    ] {
        let rho = measure_rho(sigma, 1024, 20, 0xB05);
        let b = bound(sigma);
        let ok = rho <= b + 1e-9;
        all_ok &= ok;
        table.row([
            format!("{sigma:.2}"),
            format!("{rho:.3}"),
            format!("{b:.0}"),
            if ok {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    table.print();
    println!();
    assert!(all_ok, "approximation bound violated");
    println!("BOS-M stays within the Proposition 4 bound at every σ, and is in");
    println!("practice within a few percent of optimal on normal data.");
}
