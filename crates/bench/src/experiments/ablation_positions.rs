//! Ablation: bitmap vs. index-list position storage (§II-C's design
//! argument).
//!
//! The PFOR family stores outlier positions as index lists; BOS uses the
//! Figure-2 bitmap. This ablation measures, on the real delta blocks of
//! every dataset, how many position bits each scheme would need given
//! BOS-B's chosen separations — quantifying the paper's claim that "in
//! some cases, bitmap could save the index storage".

use crate::harness::{Config, Table};
use bos::positions::{bitmap_bits, bitmap_crossover_fraction, index_list_bits};
use bos::{BitWidthSolver, Solution, SortedBlock};
use datasets::all_datasets;
use encodings::ts2diff::Ts2DiffEncoding;

/// Block size matching the encoders' default.
pub const BLOCK: usize = 1024;

/// Position-bit totals for one dataset.
#[derive(Debug, Clone, Copy, Default)]
pub struct PositionCosts {
    /// Bits under the Figure-2 bitmap.
    pub bitmap: u64,
    /// Bits under a PFOR-style index list.
    pub index_list: u64,
    /// Blocks where the bitmap was the cheaper scheme.
    pub bitmap_wins: usize,
    /// Blocks with any separation at all.
    pub separated_blocks: usize,
}

/// Measures both schemes on a series' delta blocks under BOS-B.
pub fn measure(values: &[i64]) -> PositionCosts {
    let deltas = Ts2DiffEncoding::<pfor::BpCodec>::deltas(values);
    let solver = BitWidthSolver::new();
    let mut costs = PositionCosts::default();
    for block in deltas.chunks(BLOCK) {
        let sorted = SortedBlock::from_values(block);
        if let Solution::Separated { sep, .. } = solver.solve(&sorted) {
            let e = sorted.evaluate(sep);
            let bm = bitmap_bits(block.len(), e.nl, e.nu);
            let il = index_list_bits(block.len(), e.nl, e.nu);
            costs.bitmap += bm;
            costs.index_list += il;
            costs.separated_blocks += 1;
            if bm <= il {
                costs.bitmap_wins += 1;
            }
        }
    }
    costs
}

/// Runs the experiment.
pub fn run(cfg: &Config) {
    super::banner(
        "Ablation: bitmap vs. index-list outlier-position storage (§II-C)",
        cfg,
    );
    println!(
        "Block size {BLOCK}: the bitmap wins once outliers exceed ~{:.1}% of a block.\n",
        bitmap_crossover_fraction(BLOCK) * 100.0
    );
    let mut table = Table::new([
        "dataset",
        "bitmap KiB",
        "index-list KiB",
        "bitmap/list",
        "bitmap wins",
    ]);
    let (mut total_bm, mut total_il) = (0u64, 0u64);
    for dataset in all_datasets(cfg.n) {
        let c = measure(&dataset.as_scaled_ints());
        total_bm += c.bitmap;
        total_il += c.index_list;
        table.row([
            dataset.name.to_string(),
            format!("{:.1}", c.bitmap as f64 / 8192.0),
            format!("{:.1}", c.index_list as f64 / 8192.0),
            format!("{:.2}", c.bitmap as f64 / c.index_list.max(1) as f64),
            format!("{}/{}", c.bitmap_wins, c.separated_blocks),
        ]);
    }
    table.print();
    println!();
    println!(
        "Totals: bitmap {:.1} KiB vs index list {:.1} KiB — on these outlier \
         densities (Figure 9: 3–46%) the bitmap is the right default, with \
         index lists better only on the sparsest datasets.",
        total_bm as f64 / 8192.0,
        total_il as f64 / 8192.0
    );
}
