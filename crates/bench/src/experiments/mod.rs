//! One module per reproduced table/figure. Each exposes
//! `run(&Config)` printing the regenerated artifact to stdout; the
//! `exp_*` binaries are thin wrappers, and `run_all` chains everything.

pub mod ablation_positions;
pub mod ext_query_skipping;
pub mod faults;
pub mod fig08_distributions;
pub mod fig09_outlier_pct;
pub mod fig10a_ratio;
pub mod fig10b_summary;
pub mod fig10c_time;
pub mod fig11_query;
pub mod fig12_lower_ablation;
pub mod fig13_gp;
pub mod fig14_parts;
pub mod fig15_blocksize;
pub mod grid;
pub mod obs;
pub mod prop4_approx;
pub mod store;
pub mod throughput;

/// Prints the standard experiment banner.
pub fn banner(title: &str, cfg: &crate::harness::Config) {
    println!();
    println!("=== {title} ===");
    println!(
        "(BOS_N = {} values/dataset, BOS_REPEATS = {})",
        cfg.n, cfg.repeats
    );
    println!();
}
