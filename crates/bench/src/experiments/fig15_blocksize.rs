//! Figure 15 — compression and decompression time by block size
//! (2^6 … 2^13) for BOS-V, BOS-B and BOS-M.

use crate::harness::{time_avg, Config, Table};
use bos::{BosCodec, SolverKind};
use datasets::all_datasets;

/// The block sizes of Figure 15.
pub const SIZES: [usize; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Average (compression, decompression) ns/block at a given block size.
pub fn measure(kind: SolverKind, block_size: usize, cfg: &Config) -> (f64, f64) {
    let codec = BosCodec::new(kind);
    let sets = all_datasets(cfg.n.min(20_000));
    let (mut comp, mut decomp, mut blocks) = (0.0, 0.0, 0usize);
    for dataset in &sets {
        let ints = dataset.as_scaled_ints();
        // Delta blocks — what BOS sees inside the encoders.
        let deltas: Vec<i64> = ints.windows(2).map(|w| w[1].wrapping_sub(w[0])).collect();
        // Sample a handful of blocks per dataset to keep BOS-V's O(n²)
        // sweep affordable at 8192-value blocks.
        for chunk in deltas.chunks(block_size).take(4) {
            if chunk.len() < block_size {
                continue;
            }
            let mut buf = Vec::new();
            let (_, cns) = time_avg(cfg.repeats, || {
                buf.clear();
                codec.encode(chunk, &mut buf);
            });
            let mut out = Vec::new();
            let (_, dns) = time_avg(cfg.repeats, || {
                out.clear();
                let mut pos = 0;
                codec.decode(&buf, &mut pos, &mut out).expect("decode");
            });
            assert_eq!(out, chunk);
            comp += cns;
            decomp += dns;
            blocks += 1;
        }
    }
    let blocks = blocks.max(1) as f64;
    (comp / blocks, decomp / blocks)
}

/// Runs the experiment.
pub fn run(cfg: &Config) {
    super::banner(
        "Figure 15: compression/decompression time by block size (ns/block)",
        cfg,
    );
    let kinds = [
        ("BOS-V", SolverKind::Value),
        ("BOS-B", SolverKind::BitWidth),
        ("BOS-M", SolverKind::Median),
    ];
    for (title, pick) in [
        ("Compression (ns/block)", 0usize),
        ("Decompression (ns/block)", 1),
    ] {
        println!("{title}:");
        let mut headers = vec!["block".to_string()];
        headers.extend(kinds.iter().map(|(n, _)| n.to_string()));
        let mut table = Table::new(headers);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for &size in &SIZES {
            let mut row = Vec::new();
            for &(_, kind) in &kinds {
                let (c, d) = measure(kind, size, cfg);
                row.push(if pick == 0 { c } else { d });
            }
            rows.push(row.clone());
            table.row(
                std::iter::once(size.to_string()).chain(row.iter().map(|v| format!("{v:.0}"))),
            );
        }
        table.print();
        println!();
        if pick == 0 {
            // At the largest block, the complexity ordering must show:
            // BOS-V (quadratic) slowest, BOS-M (linear) fastest. A tiny
            // BOS_N yields no full 8192-value block at all (measure()
            // reports 0 ns/block); the ordering check needs real data.
            let last = rows.last().expect("rows");
            if last.iter().all(|&v| v > 0.0) {
                assert!(last[0] > last[1], "BOS-V must be slower than BOS-B at 8192");
                assert!(last[1] > last[2], "BOS-B must be slower than BOS-M at 8192");
            } else {
                println!("(BOS_N too small for a full 8192-value block; ordering check skipped)");
            }
        }
    }
    println!("BOS-V grows fastest with block size (O(n²)), BOS-B in between");
    println!("(O(n log n)), BOS-M linear — the paper's scalability finding.");
}
