//! Figure 10b — average compression ratio vs. average compression time of
//! every method (the paper's scatter plot, printed as a sorted table).

use super::grid;
use crate::harness::{fmt_ns, fmt_ratio, Config, Table};

/// Runs the experiment.
pub fn run(cfg: &Config) {
    super::banner(
        "Figure 10b: average compression ratio vs. time (scatter, as a table)",
        cfg,
    );
    let (_, rows) = grid::compute(cfg);
    let mut summary: Vec<(String, f64, f64)> = rows
        .iter()
        .map(|r| (r.name.clone(), r.avg_ratio(), r.avg_comp_ns()))
        .collect();
    summary.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut table = Table::new(["method", "avg ratio", "avg comp ns/point"]);
    for (name, ratio, ns) in &summary {
        table.row([name.clone(), fmt_ratio(*ratio), fmt_ns(*ns)]);
    }
    table.print();

    // The paper's headline: existing methods ≈ 2.75, BOS-B ≈ 3.25.
    let best_bos = summary
        .iter()
        .filter(|(n, _, _)| n.contains("BOS-B") || n.contains("BOS-V"))
        .map(|(_, r, _)| *r)
        .fold(0.0f64, f64::max);
    let best_baseline = summary
        .iter()
        .filter(|(n, _, _)| !n.contains("BOS"))
        .map(|(_, r, _)| *r)
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "Best BOS average ratio: {best_bos:.2}; best non-BOS baseline: {best_baseline:.2} \
         (paper: ~3.25 vs ~2.75)."
    );
    assert!(
        best_bos > best_baseline,
        "BOS must dominate the baselines on average"
    );
}
