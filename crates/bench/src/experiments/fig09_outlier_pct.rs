//! Figure 9 — percentage of lower and upper outliers separated by BOS-V.
//!
//! For each dataset, the delta stream (the input BOS actually sees inside
//! TS2DIFF) is split into 1024-value blocks, each block is solved with the
//! exact value solver, and the separated outliers are aggregated.

use crate::harness::Config;
use bos::stats::{analyze_series, SeriesStats};
use bos::ValueSolver;
use datasets::all_datasets;
use encodings::ts2diff::Ts2DiffEncoding;

/// Block size matching the encoders' default.
pub const BLOCK: usize = 1024;

/// Measures the separated outlier fractions of a series under BOS-V,
/// on the delta stream BOS actually sees inside TS2DIFF.
pub fn measure(values: &[i64]) -> SeriesStats {
    let deltas = Ts2DiffEncoding::<pfor::BpCodec>::deltas(values);
    analyze_series(&ValueSolver::new(), &deltas, BLOCK)
}

/// Runs the experiment.
pub fn run(cfg: &Config) {
    super::banner(
        "Figure 9: percentage of lower and upper outliers separated by BOS-V",
        cfg,
    );
    let mut table = crate::harness::Table::new(["dataset", "lower %", "upper %", "total %"]);
    for dataset in all_datasets(cfg.n) {
        let pct = measure(&dataset.as_scaled_ints());
        table.row([
            dataset.name.to_string(),
            format!("{:.1}", pct.lower_frac() * 100.0),
            format!("{:.1}", pct.upper_frac() * 100.0),
            format!("{:.1}", (pct.lower_frac() + pct.upper_frac()) * 100.0),
        ]);
    }
    table.print();
    println!();
    println!("Outliers are present in every dataset on both sides — the premise");
    println!("of separating lower outliers in addition to PFOR's upper ones.");
}
