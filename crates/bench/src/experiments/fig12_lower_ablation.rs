//! Figure 12 — BOS with both outlier sides vs. upper outliers only
//! ("terminating the loop early without enumerating lower outliers").

use crate::harness::{fmt_ratio, Config, Table};
use bos::BosCodec;
use bos::SolverKind;
use datasets::all_datasets;
use encodings::ts2diff::Ts2DiffEncoding;

/// Compression ratio of TS2DIFF with the given BOS solver kind.
pub fn ratio(values: &[i64], kind: SolverKind) -> f64 {
    let enc = Ts2DiffEncoding::new(BosCodec::new(kind));
    let mut buf = Vec::new();
    enc.encode(values, &mut buf);
    let mut out = Vec::new();
    let mut pos = 0;
    enc.decode(&buf, &mut pos, &mut out).expect("decode");
    assert_eq!(out, values);
    (values.len() * 8) as f64 / buf.len() as f64
}

/// Runs the experiment.
pub fn run(cfg: &Config) {
    super::banner(
        "Figure 12: upper+lower outliers vs. upper outliers only (BOS ablation)",
        cfg,
    );
    let mut table = Table::new(["dataset", "upper+lower", "upper only", "gain %"]);
    let mut always_ge = true;
    for dataset in all_datasets(cfg.n) {
        let ints = dataset.as_scaled_ints();
        let full = ratio(&ints, SolverKind::BitWidth);
        let upper = ratio(&ints, SolverKind::BitWidthUpperOnly);
        always_ge &= full >= upper - 1e-9;
        table.row([
            dataset.name.to_string(),
            fmt_ratio(full),
            fmt_ratio(upper),
            format!("{:+.1}", (full / upper - 1.0) * 100.0),
        ]);
    }
    table.print();
    println!();
    assert!(always_ge, "full search lost to its own restriction");
    println!("Considering both sides never hurts and improves every dataset with");
    println!("lower outliers — even where their share is small (paper §VIII-C2).");
}
