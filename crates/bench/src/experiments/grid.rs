//! The Figure 10 method grid: every method × every dataset, measuring
//! compression ratio, compression time and decompression time. Shared by
//! the `exp_fig10a/b/c` binaries.

use crate::harness::{time_avg, Config};
use datasets::{all_datasets, Dataset};
use encodings::{OuterKind, PackerKind, Pipeline};
use floatcodec::FloatCodec;

/// Measurements of one method on one dataset.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// `uncompressedSize / compressedSize` (the paper's metric).
    pub ratio: f64,
    /// Compression nanoseconds per value.
    pub comp_ns: f64,
    /// Decompression nanoseconds per value.
    pub decomp_ns: f64,
}

/// One method's row across all datasets.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Method label as used in the paper's tables.
    pub name: String,
    /// Group label ("Float", "RLE+", "SPRINTZ+", "TS2DIFF+").
    pub group: &'static str,
    /// One cell per dataset (Figure 10a column order).
    pub cells: Vec<Cell>,
}

impl MethodRow {
    /// Average ratio across datasets.
    pub fn avg_ratio(&self) -> f64 {
        self.cells.iter().map(|c| c.ratio).sum::<f64>() / self.cells.len() as f64
    }

    /// Average compression ns/point across datasets.
    pub fn avg_comp_ns(&self) -> f64 {
        self.cells.iter().map(|c| c.comp_ns).sum::<f64>() / self.cells.len() as f64
    }

    /// Average decompression ns/point across datasets.
    pub fn avg_decomp_ns(&self) -> f64 {
        self.cells.iter().map(|c| c.decomp_ns).sum::<f64>() / self.cells.len() as f64
    }
}

fn measure_float(codec: &dyn FloatCodec, dataset: &Dataset, repeats: usize) -> Cell {
    let values = dataset.as_floats();
    let mut buf = Vec::new();
    let (_, comp_ns) = time_avg(repeats, || {
        buf.clear();
        codec.encode(&values, &mut buf);
    });
    let mut out = Vec::new();
    let (_, decomp_ns) = time_avg(repeats, || {
        out.clear();
        let mut pos = 0;
        codec.decode(&buf, &mut pos, &mut out).expect("decode");
    });
    assert_eq!(out.len(), values.len());
    Cell {
        ratio: dataset.uncompressed_bytes() as f64 / buf.len() as f64,
        comp_ns: comp_ns / values.len() as f64,
        decomp_ns: decomp_ns / values.len() as f64,
    }
}

fn measure_pipeline(pipeline: &Pipeline, dataset: &Dataset, repeats: usize) -> Cell {
    let ints = dataset.as_scaled_ints();
    let mut buf = Vec::new();
    let (_, comp_ns) = time_avg(repeats, || {
        buf.clear();
        pipeline.encode(&ints, &mut buf);
    });
    let mut out = Vec::new();
    let (_, decomp_ns) = time_avg(repeats, || {
        out.clear();
        let mut pos = 0;
        pipeline.decode(&buf, &mut pos, &mut out).expect("decode");
    });
    assert_eq!(out, ints, "{} lossy on {}", pipeline.label(), dataset.abbr);
    Cell {
        ratio: dataset.uncompressed_bytes() as f64 / buf.len() as f64,
        comp_ns: comp_ns / ints.len() as f64,
        decomp_ns: decomp_ns / ints.len() as f64,
    }
}

/// Computes the full grid. Expensive (runs every method on every dataset);
/// each binary calls it once.
pub fn compute(cfg: &Config) -> (Vec<&'static str>, Vec<MethodRow>) {
    let sets = all_datasets(cfg.n);
    let abbrs: Vec<&'static str> = sets.iter().map(|d| d.abbr).collect();
    let mut rows = Vec::new();

    for codec in floatcodec::all_codecs() {
        rows.push(MethodRow {
            name: codec.name().to_string(),
            group: "Float",
            cells: sets
                .iter()
                .map(|d| measure_float(codec.as_ref(), d, cfg.repeats))
                .collect(),
        });
    }

    for outer in OuterKind::ALL {
        for packer in PackerKind::ALL {
            let pipeline = Pipeline::new(outer, packer);
            let group = match outer {
                OuterKind::Rle => "RLE+",
                OuterKind::Sprintz => "SPRINTZ+",
                OuterKind::Ts2Diff => "TS2DIFF+",
            };
            rows.push(MethodRow {
                name: pipeline.label(),
                group,
                cells: sets
                    .iter()
                    .map(|d| measure_pipeline(&pipeline, d, cfg.repeats))
                    .collect(),
            });
        }
    }
    (abbrs, rows)
}
