//! Experiment harness reproducing every table and figure of the BOS paper.
//!
//! * [`harness`] — configuration, timing and table-printing utilities.
//! * [`experiments`] — one module per paper artifact (Figures 8–15 and
//!   the Proposition 4 bound check); `exp_*` binaries wrap them and
//!   `run_all` chains the full evaluation.
//!
//! Configuration via environment: `BOS_N` (values per dataset) and
//! `BOS_REPEATS` (timing repetitions).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
