//! Shared utilities for the experiment binaries.

use std::time::Instant;

/// Experiment configuration, read from the environment:
///
/// * `BOS_N` — values per dataset (default 30 000; the paper's datasets
///   are larger, but ratio is size-independent once headers amortize).
/// * `BOS_REPEATS` — timing repetitions (default 3; the paper uses 500).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Values per dataset.
    pub n: usize,
    /// Timing repetitions.
    pub repeats: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Config {
    /// Reads the configuration from the environment.
    ///
    /// Unparsable values fall back to the default but print a warning to
    /// stderr — a silently ignored `BOS_N=30k` would otherwise run the
    /// whole experiment at the wrong size.
    pub fn from_env() -> Self {
        let (n, n_warn) = parse_env_usize("BOS_N", std::env::var("BOS_N").ok().as_deref(), 30_000);
        let (repeats, r_warn) = parse_env_usize(
            "BOS_REPEATS",
            std::env::var("BOS_REPEATS").ok().as_deref(),
            3,
        );
        for warn in [n_warn, r_warn].into_iter().flatten() {
            eprintln!("{warn}");
        }
        Self { n, repeats }
    }
}

/// Parses an environment override, returning the value plus an optional
/// warning line when `raw` is present but not a positive integer.
///
/// Split out from [`Config::from_env`] so the fallback/warning logic is
/// unit-testable without mutating process-global environment state.
fn parse_env_usize(name: &str, raw: Option<&str>, default: usize) -> (usize, Option<String>) {
    match raw {
        None => (default, None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(v) if v > 0 => (v, None),
            _ => (
                default,
                Some(format!(
                    "warning: ignoring {name}={raw:?} (not a positive integer), using default {default}"
                )),
            ),
        },
    }
}

/// Runs `f` once and returns its result plus elapsed nanoseconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as f64)
}

/// Runs `f` `repeats` times and returns the last result plus the average
/// elapsed nanoseconds.
pub fn time_avg<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(repeats >= 1);
    let mut total = 0.0;
    let mut last = None;
    for _ in 0..repeats {
        let (out, ns) = time_once(&mut f);
        total += ns;
        last = Some(out);
    }
    (last.expect("repeats >= 1"), total / repeats as f64)
}

/// Runs `f` once untimed as a warmup, then `repeats` timed runs, returning
/// the last result plus the **minimum** elapsed nanoseconds.
///
/// Min-of-N is the standard low-noise estimator for short deterministic
/// kernels (scheduler preemptions and cache-cold runs only ever add time),
/// so throughput numbers recorded in `BENCH_PR*.json` artifacts stay reproducible
/// across runs at the same `BOS_REPEATS`.
pub fn time_best_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(repeats >= 1);
    let _ = f(); // warmup: touch caches, resolve lazy init
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let (out, ns) = time_once(&mut f);
        best = best.min(ns);
        last = Some(out);
    }
    (last.expect("repeats >= 1"), best)
}

/// Timing spread over a repeat set, all in nanoseconds.
///
/// `min` is the low-noise point estimate (same rationale as
/// [`time_best_of`]); the spread fields let a reader of the JSON artifact
/// judge how noisy the run was without re-running it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeStats {
    /// Fastest run.
    pub min: f64,
    /// Arithmetic mean over all runs.
    pub mean: f64,
    /// Slowest run.
    pub max: f64,
    /// Population standard deviation (0 for a single repeat).
    pub stddev: f64,
}

impl TimeStats {
    /// Computes the stats from raw per-run samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty());
        let n = samples.len() as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        let mean = sum / n;
        let var = samples
            .iter()
            .map(|&s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        Self {
            min,
            mean,
            max,
            stddev: var.sqrt(),
        }
    }
}

/// Runs `f` once untimed as a warmup, then `repeats` timed runs, returning
/// the last result plus the full timing spread.
///
/// `time_best_of` with the spread kept: `stats.min` matches what
/// [`time_best_of`] would report for the same run set.
pub fn time_stats<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, TimeStats) {
    assert!(repeats >= 1);
    let _ = f(); // warmup: touch caches, resolve lazy init
    let mut samples = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let (out, ns) = time_once(&mut f);
        samples.push(ns);
        last = Some(out);
    }
    (
        last.expect("repeats >= 1"),
        TimeStats::from_samples(&samples),
    )
}

/// A simple fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Prints the table with aligned columns (first column left-aligned,
    /// the rest right-aligned).
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line
        };
        println!("{}", fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Formats a ratio to the paper's 2-decimal convention.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}

/// Formats nanoseconds-per-point to the paper's integer convention.
pub fn fmt_ns(ns: f64) -> String {
    format!("{ns:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(["method", "EE", "MT"]);
        t.row(["GORILLA", "1.67", "2.23"]);
        t.row(["BOS-B", "3.03", "2.48"]);
        t.print(); // must not panic
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn timing_returns_positive() {
        let (v, ns) = time_avg(3, || (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(ns > 0.0);
    }

    #[test]
    fn best_of_is_at_most_avg() {
        let mut calls = 0usize;
        let (v, best) = time_best_of(5, || {
            calls += 1;
            (0..1000).sum::<u64>()
        });
        assert_eq!(v, 499_500);
        assert_eq!(calls, 6, "warmup + 5 timed runs");
        assert!(best >= 0.0 && best.is_finite());
        let (_, avg) = time_avg(5, || (0..1000).sum::<u64>());
        // Not a strict ordering guarantee across separate closures, but the
        // min of a run set can never exceed a same-length average by much;
        // sanity-bound it loosely to catch unit mixups (ns vs ms).
        assert!(best < avg * 100.0 + 1.0);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_ratio(3.144), "3.14");
        assert_eq!(fmt_ns(123.7), "124");
    }

    #[test]
    fn env_parse_accepts_valid_and_defaults_on_missing() {
        assert_eq!(parse_env_usize("BOS_N", Some("1234"), 30_000), (1234, None));
        assert_eq!(parse_env_usize("BOS_N", Some(" 42 "), 30_000), (42, None));
        assert_eq!(parse_env_usize("BOS_N", None, 30_000), (30_000, None));
    }

    #[test]
    fn env_parse_warns_on_garbage() {
        for bad in ["30k", "", "-5", "0", "3.5", "lots"] {
            let (v, warn) = parse_env_usize("BOS_REPEATS", Some(bad), 3);
            assert_eq!(v, 3, "bad value {bad:?} must fall back to the default");
            let warn = warn.expect("bad value must produce a warning");
            assert!(
                warn.contains("BOS_REPEATS"),
                "warning names the variable: {warn}"
            );
            assert!(
                warn.contains(bad),
                "warning quotes the bad value {bad:?}: {warn}"
            );
        }
    }

    #[test]
    fn time_stats_spread_is_consistent() {
        let (v, stats) = time_stats(5, || (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(stats.min > 0.0);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert!(stats.stddev >= 0.0 && stats.stddev.is_finite());
    }

    #[test]
    fn time_stats_from_known_samples() {
        let s = TimeStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 2.0);
        let single = TimeStats::from_samples(&[3.0]);
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.min, single.max);
    }
}
