//! Property-based tests for the bit-level substrate.

use bitpack::bitmap::{OutlierBitmap, Part};
use bitpack::bits::{BitReader, BitWriter};
use bitpack::kernels::{pack_words, packed_size, unpack_words};
use bitpack::pack::{bp_decode, bp_encode, bp_encoded_size};
use bitpack::simple8b;
use bitpack::unrolled::{
    pack_words_for, pack_words_unrolled, unpack_words_for, unpack_words_unrolled,
};
use bitpack::width::{range_u64, width, width1};
use bitpack::zigzag::{
    read_varint, read_varint_i64, write_varint, write_varint_i64, zigzag_decode, zigzag_encode,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bit_stream_roundtrip(fields in prop::collection::vec((any::<u64>(), 0u32..=64), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, wd) in &fields {
            w.write_bits(v, wd);
        }
        let expected_bits: usize = fields.iter().map(|&(_, wd)| wd as usize).sum();
        let (buf, bits) = w.finish();
        prop_assert_eq!(bits, expected_bits);
        let mut r = BitReader::new(&buf);
        for &(v, wd) in &fields {
            let masked = if wd == 0 { 0 } else if wd == 64 { v } else { v & ((1u64 << wd) - 1) };
            prop_assert_eq!(r.read_bits(wd), Ok(masked));
        }
    }

    #[test]
    fn kernels_roundtrip_any_width(values in prop::collection::vec(any::<u64>(), 0..300), w in 0u32..=64) {
        let mask = if w == 0 { 0 } else if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let values: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        let mut buf = Vec::new();
        let written = pack_words(&values, w, &mut buf);
        prop_assert_eq!(Some(written), packed_size(values.len(), w));
        let mut out = Vec::new();
        let consumed = unpack_words(&buf, values.len(), w, &mut out);
        prop_assert_eq!(consumed, Ok(written));
        prop_assert_eq!(out, values);
    }

    #[test]
    fn unrolled_bit_identical_any_width(values in prop::collection::vec(any::<u64>(), 0..300), w in 0u32..=64) {
        let mask = if w == 0 { 0 } else if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let values: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        let mut generic = Vec::new();
        pack_words(&values, w, &mut generic);
        let mut fast = Vec::new();
        let written = pack_words_unrolled(&values, w, &mut fast);
        prop_assert_eq!(&fast, &generic);
        prop_assert_eq!(Some(written), packed_size(values.len(), w));
        let mut out = Vec::new();
        let consumed = unpack_words_unrolled(&generic, values.len(), w, &mut out);
        prop_assert_eq!(consumed, Ok(written));
        prop_assert_eq!(out, values);
    }

    #[test]
    fn fused_for_equals_unpack_then_add(
        values in prop::collection::vec(any::<u64>(), 0..300),
        w in 0u32..=64,
        reference in any::<i64>(),
    ) {
        // pack_words_for must produce the exact bytes of mask-then-pack,
        // and unpack_words_for the exact values of unpack-then-wrapping-add.
        let mask = if w == 0 { 0 } else if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let deltas: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        let originals: Vec<i64> = deltas.iter().map(|&d| reference.wrapping_add(d as i64)).collect();
        let mut fused = Vec::new();
        pack_words_for(&originals, reference, w, &mut fused);
        let mut two_pass = Vec::new();
        pack_words(&deltas, w, &mut two_pass);
        prop_assert_eq!(&fused, &two_pass);
        let mut raw = Vec::new();
        unpack_words(&fused, deltas.len(), w, &mut raw).unwrap();
        let expected: Vec<i64> = raw.iter().map(|&d| reference.wrapping_add(d as i64)).collect();
        let mut out = Vec::new();
        let consumed = unpack_words_for(&fused, deltas.len(), w, reference, &mut out);
        prop_assert_eq!(consumed, Ok(fused.len()));
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(&out, &originals);
    }

    #[test]
    fn kernels_match_bitwriter_semantics(values in prop::collection::vec(0u64..(1 << 17), 0..200)) {
        // Same values, two packers: decoded outputs must agree (the bit
        // layouts differ by design — LSB-word vs MSB-stream).
        let w = 17u32;
        let mut kbuf = Vec::new();
        pack_words(&values, w, &mut kbuf);
        let mut kout = Vec::new();
        unpack_words(&kbuf, values.len(), w, &mut kout).unwrap();
        let mut bw = BitWriter::new();
        for &v in &values {
            bw.write_bits(v, w);
        }
        let (bbuf, _) = bw.finish();
        let mut br = BitReader::new(&bbuf);
        let bout: Vec<u64> = (0..values.len()).map(|_| br.read_bits(w).unwrap()).collect();
        prop_assert_eq!(&kout, &values);
        prop_assert_eq!(&bout, &values);
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn zigzag_preserves_magnitude_order(a in any::<i32>(), b in any::<i32>()) {
        // |a| < |b| implies zigzag(a) < zigzag(b) + 1 slack for sign.
        let (a, b) = (a as i64, b as i64);
        if a.unsigned_abs() < b.unsigned_abs() {
            prop_assert!(zigzag_encode(a) < zigzag_encode(b) + 1);
        }
    }

    #[test]
    fn varint_roundtrip(values in prop::collection::vec(any::<u64>(), 0..100)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_varint(&buf, &mut pos), Ok(v));
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn signed_varint_roundtrip(values in prop::collection::vec(any::<i64>(), 0..100)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_varint_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_varint_i64(&buf, &mut pos), Ok(v));
        }
    }

    #[test]
    fn bp_roundtrip(values in prop::collection::vec(any::<u64>(), 0..300)) {
        let mut buf = Vec::new();
        bp_encode(&values, &mut buf);
        prop_assert_eq!(buf.len(), bp_encoded_size(&values));
        let mut pos = 0;
        let mut out = Vec::new();
        prop_assert!(bp_decode(&buf, &mut pos, &mut out).is_ok());
        prop_assert_eq!(out, values);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn bp_roundtrip_small_domain(values in prop::collection::vec(0u64..16, 0..300)) {
        let mut buf = Vec::new();
        bp_encode(&values, &mut buf);
        let mut pos = 0;
        let mut out = Vec::new();
        prop_assert!(bp_decode(&buf, &mut pos, &mut out).is_ok());
        prop_assert_eq!(out, values);
    }

    #[test]
    fn simple8b_roundtrip(values in prop::collection::vec(0u64..(1 << 60), 0..500)) {
        let mut buf = Vec::new();
        simple8b::encode(&values, &mut buf).unwrap();
        let mut pos = 0;
        let mut out = Vec::new();
        simple8b::decode(&buf, &mut pos, &mut out).unwrap();
        prop_assert_eq!(out, values);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn simple8b_sparse_roundtrip(
        values in prop::collection::vec(prop_oneof![9 => Just(0u64), 1 => 0u64..(1 << 59)], 0..600)
    ) {
        let mut buf = Vec::new();
        simple8b::encode(&values, &mut buf).unwrap();
        let mut pos = 0;
        let mut out = Vec::new();
        simple8b::decode(&buf, &mut pos, &mut out).unwrap();
        prop_assert_eq!(out, values);
    }

    #[test]
    fn bitmap_roundtrip(codes in prop::collection::vec(0u8..3, 0..400)) {
        let parts: Vec<Part> = codes
            .iter()
            .map(|&c| match c {
                0 => Part::Center,
                1 => Part::Lower,
                _ => Part::Upper,
            })
            .collect();
        let nl = parts.iter().filter(|&&p| p == Part::Lower).count();
        let nu = parts.iter().filter(|&&p| p == Part::Upper).count();
        let mut w = BitWriter::new();
        let bits = OutlierBitmap::encode(&parts, &mut w);
        prop_assert_eq!(bits, OutlierBitmap::size_bits(parts.len(), nl, nu));
        let (buf, _) = w.finish();
        let mut r = BitReader::new(&buf);
        let mut out = Vec::new();
        prop_assert!(OutlierBitmap::decode(&mut r, parts.len(), &mut out).is_ok());
        prop_assert_eq!(out, parts);
    }

    #[test]
    fn width_monotone(a in any::<u64>(), b in any::<u64>()) {
        if a <= b {
            prop_assert!(width(a) <= width(b));
            prop_assert!(width1(a) <= width1(b));
        }
    }

    #[test]
    fn width_covers_value(v in any::<u64>()) {
        let w = width(v);
        if w < 64 {
            prop_assert!(v < (1u64 << w));
        }
        if v > 0 {
            prop_assert!(v >= (1u64 << (w - 1)));
        }
    }

    #[test]
    fn range_u64_matches_i128(lo in any::<i64>(), hi in any::<i64>()) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        prop_assert_eq!(range_u64(lo, hi) as u128, (hi as i128 - lo as i128) as u128);
    }
}

/// Deterministic exhaustive sweep: every width 0..=64 at every lane
/// boundary count, with max-width values, byte-identical to the generic
/// kernels (the proptests above sample; this leaves no width/count gap).
#[test]
fn unrolled_exhaustive_widths_and_boundary_counts() {
    for w in 0..=64u32 {
        let mask = if w == 0 {
            0
        } else if w == 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        };
        for n in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            // Include the maximum representable value at this width.
            let values: Vec<u64> = (0..n as u64)
                .map(|i| {
                    if i % 7 == 0 {
                        mask
                    } else {
                        i.wrapping_mul(0x9E3779B97F4A7C15) & mask
                    }
                })
                .collect();
            let mut generic = Vec::new();
            pack_words(&values, w, &mut generic);
            let mut fast = Vec::new();
            pack_words_unrolled(&values, w, &mut fast);
            assert_eq!(fast, generic, "pack mismatch at w = {w}, n = {n}");
            let mut out = Vec::new();
            unpack_words_unrolled(&generic, n, w, &mut out).expect("unpack");
            assert_eq!(out, values, "unpack mismatch at w = {w}, n = {n}");
        }
    }
}
