//! MSB-first bit stream reader and writer.
//!
//! The BOS block format (Fig. 7 of the paper) mixes fields of many different
//! bit-widths: per-part payload widths `α`, `β`, `γ`, the variable-length
//! position bitmap, and packed values. Both ends therefore operate on a plain
//! bit stream rather than byte-aligned records.
//!
//! Bits are written most-significant-first within each byte, matching the
//! conventional on-disk layout of IoTDB's bit-packing and making hex dumps
//! human-readable.

use crate::error::{DecodeError, DecodeResult};

/// Appends bits to a growable byte buffer, MSB-first.
///
/// ```
/// use bitpack::{BitWriter, BitReader};
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFF, 8);
/// let (buf, bits) = w.finish();
/// assert_eq!(bits, 11);
/// let mut r = BitReader::new(&buf);
/// assert_eq!(r.read_bits(3), Ok(0b101));
/// assert_eq!(r.read_bits(8), Ok(0xFF));
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in `buf` (the last byte may be partial).
    len_bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            len_bits: 0,
        }
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Writes the low `width` bits of `value`, most significant first.
    ///
    /// `width` may be 0 (writes nothing) up to 64. Bits of `value` above
    /// `width` are ignored.
    #[inline]
    pub fn write_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        if width == 0 {
            return;
        }
        let value = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        let mut remaining = width;
        while remaining > 0 {
            let bit_pos = self.len_bits & 7;
            if bit_pos == 0 {
                self.buf.push(0);
            }
            let avail = 8 - bit_pos as u32;
            let take = avail.min(remaining);
            // The `take` bits we emit are the most significant of the
            // `remaining` bits still pending.
            let chunk = (value >> (remaining - take)) & ((1u64 << take) - 1);
            if let Some(byte) = self.buf.last_mut() {
                *byte |= (chunk as u8) << (avail - take);
            }
            self.len_bits += take as usize;
            remaining -= take;
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Appends the full content of another writer, preserving bit alignment.
    pub fn append(&mut self, other: &BitWriter) {
        let mut remaining = other.len_bits;
        let mut bytes = other.buf.iter().copied();
        while remaining >= 8 {
            let byte = bytes.next().unwrap_or(0);
            self.write_bits(byte as u64, 8);
            remaining -= 8;
        }
        if remaining > 0 {
            let byte = bytes.next().unwrap_or(0);
            self.write_bits((byte >> (8 - remaining)) as u64, remaining as u32);
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let rem = self.len_bits & 7;
        if rem != 0 {
            self.write_bits(0, 8 - rem as u32);
        }
    }

    /// Consumes the writer, returning the byte buffer and the exact bit count.
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.buf, self.len_bits)
    }

    /// Consumes the writer, returning only the (zero-padded) byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits from a byte slice, MSB-first. Mirror of [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`, starting at bit 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos_bits: 0 }
    }

    /// Current bit position from the start of the buffer.
    pub fn position_bits(&self) -> usize {
        self.pos_bits
    }

    /// Number of bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos_bits
    }

    /// Reads `width` (0..=64) bits; fails with [`DecodeError::Truncated`]
    /// if the buffer is exhausted before `width` bits are available.
    #[inline]
    pub fn read_bits(&mut self, width: u32) -> DecodeResult<u64> {
        debug_assert!(width <= 64);
        if width == 0 {
            return Ok(0);
        }
        if self.remaining_bits() < width as usize {
            return Err(DecodeError::Truncated);
        }
        let mut out = 0u64;
        let mut remaining = width;
        while remaining > 0 {
            let byte = self
                .buf
                .get(self.pos_bits >> 3)
                .copied()
                .ok_or(DecodeError::Truncated)?;
            let bit_pos = (self.pos_bits & 7) as u32;
            let avail = 8 - bit_pos;
            let take = avail.min(remaining);
            let chunk = ((byte << bit_pos) >> (8 - take)) as u64;
            out = if take == 64 {
                chunk
            } else {
                (out << take) | chunk
            };
            self.pos_bits += take as usize;
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> DecodeResult<bool> {
        self.read_bits(1).map(|b| b != 0)
    }

    /// Skips forward to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let rem = self.pos_bits & 7;
        if rem != 0 {
            self.pos_bits += 8 - rem;
        }
    }

    /// Skips `width` bits; fails with [`DecodeError::Truncated`] on
    /// underflow.
    pub fn skip_bits(&mut self, width: usize) -> DecodeResult<()> {
        if self.remaining_bits() < width {
            return Err(DecodeError::Truncated);
        }
        self.pos_bits += width;
        Ok(())
    }

    /// Returns the rest of the buffer starting from the current byte
    /// boundary (aligning first).
    pub fn remaining_bytes(&mut self) -> &'a [u8] {
        self.align_to_byte();
        self.buf.get(self.pos_bits >> 3..).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0110, 4);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 0);
        w.write_bits(12345, 17);
        let (buf, bits) = w.finish();
        assert_eq!(bits, 1 + 4 + 64 + 17);
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(1), Ok(1));
        assert_eq!(r.read_bits(4), Ok(0b0110));
        assert_eq!(r.read_bits(64), Ok(u64::MAX));
        assert_eq!(r.read_bits(0), Ok(0));
        assert_eq!(r.read_bits(17), Ok(12345));
    }

    #[test]
    fn width_masks_high_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF_FFFF_FFFF_FFFF, 3);
        let (buf, _) = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3), Ok(0b111));
    }

    #[test]
    fn underflow_returns_none() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.read_bits(8), Ok(0xAB));
        assert_eq!(r.read_bits(1), Err(DecodeError::Truncated));
    }

    #[test]
    fn read_across_byte_boundaries() {
        let mut w = BitWriter::new();
        for i in 0..100u64 {
            w.write_bits(i, 7);
        }
        let (buf, _) = w.finish();
        let mut r = BitReader::new(&buf);
        for i in 0..100u64 {
            assert_eq!(r.read_bits(7), Ok(i));
        }
    }

    #[test]
    fn align_and_remaining_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.align_to_byte();
        w.write_bits(0xDE, 8);
        w.write_bits(0xAD, 8);
        let (buf, bits) = w.finish();
        assert_eq!(bits, 24);
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3), Ok(0b101));
        assert_eq!(r.remaining_bytes(), &[0xDE, 0xAD]);
    }

    #[test]
    fn append_preserves_bits() {
        let mut a = BitWriter::new();
        a.write_bits(0b11, 2);
        let mut b = BitWriter::new();
        b.write_bits(0x1234, 13);
        b.write_bits(1, 1);
        a.append(&b);
        let (buf, bits) = a.finish();
        assert_eq!(bits, 16);
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(2), Ok(0b11));
        assert_eq!(r.read_bits(13), Ok(0x1234));
        assert_eq!(r.read_bits(1), Ok(1));
    }

    #[test]
    fn skip_bits_works() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 16);
        w.write_bits(0b1010, 4);
        let (buf, _) = w.finish();
        let mut r = BitReader::new(&buf);
        r.skip_bits(16).unwrap();
        assert_eq!(r.read_bits(4), Ok(0b1010));
        assert!(r.skip_bits(5).is_err());
    }

    #[test]
    fn write_bit_and_read_bit() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let (buf, bits) = w.finish();
        assert_eq!(bits, pattern.len());
        let mut r = BitReader::new(&buf);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Ok(b));
        }
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert!(w.is_empty());
        let (buf, bits) = w.finish();
        assert!(buf.is_empty());
        assert_eq!(bits, 0);
    }
}
