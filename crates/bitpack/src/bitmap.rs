//! The outlier-position bitmap of Figure 2.
//!
//! Each index of the block gets a variable-length code telling the decoder
//! which sub-stream the value at that index lives in:
//!
//! * `0`  — center value
//! * `10` — lower outlier
//! * `11` — upper outlier
//!
//! The total cost is exactly `n + nl + nu` bits (every index pays one bit,
//! outliers pay one more), which is the `+ n` and `+ nl`, `+ nu` terms of
//! Definition 5.

use crate::bits::{BitReader, BitWriter};
use crate::error::DecodeResult;

/// Which of the three separated parts a value belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Part {
    /// Center value (`xl < x < xu`), code `0`.
    Center,
    /// Lower outlier (`x ≤ xl`), code `10`.
    Lower,
    /// Upper outlier (`x ≥ xu`), code `11`.
    Upper,
}

/// Encoder/decoder for the position bitmap.
#[derive(Debug, Default, Clone)]
pub struct OutlierBitmap;

impl OutlierBitmap {
    /// Writes the codes for `parts` into `out`. Returns the number of bits
    /// written (`n + nl + nu`).
    pub fn encode(parts: &[Part], out: &mut BitWriter) -> usize {
        let before = out.len_bits();
        for &p in parts {
            match p {
                Part::Center => out.write_bit(false),
                Part::Lower => {
                    out.write_bit(true);
                    out.write_bit(false);
                }
                Part::Upper => {
                    out.write_bit(true);
                    out.write_bit(true);
                }
            }
        }
        out.len_bits() - before
    }

    /// Reads `n` part codes. Fails with
    /// [`DecodeError::Truncated`](crate::DecodeError::Truncated) on a short
    /// stream.
    pub fn decode(reader: &mut BitReader<'_>, n: usize, out: &mut Vec<Part>) -> DecodeResult<()> {
        out.reserve(n);
        for _ in 0..n {
            let part = if reader.read_bit()? {
                if reader.read_bit()? {
                    Part::Upper
                } else {
                    Part::Lower
                }
            } else {
                Part::Center
            };
            out.push(part);
        }
        Ok(())
    }

    /// Exact encoded size in bits for `n` values of which `nl` are lower and
    /// `nu` upper outliers.
    pub fn size_bits(n: usize, nl: usize, nu: usize) -> usize {
        n + nl + nu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_cost() {
        // A block of n values with nl lower and nu upper outliers costs
        // exactly n + nl + nu bits.
        let parts = [
            Part::Center,
            Part::Center,
            Part::Lower,
            Part::Upper,
            Part::Center,
            Part::Upper,
        ];
        let mut w = BitWriter::new();
        let bits = OutlierBitmap::encode(&parts, &mut w);
        assert_eq!(bits, OutlierBitmap::size_bits(6, 1, 2));
        assert_eq!(bits, 9);
    }

    #[test]
    fn roundtrip_all_combinations() {
        let mut parts = Vec::new();
        for i in 0..300 {
            parts.push(match i % 3 {
                0 => Part::Center,
                1 => Part::Lower,
                _ => Part::Upper,
            });
        }
        let mut w = BitWriter::new();
        OutlierBitmap::encode(&parts, &mut w);
        let (buf, _) = w.finish();
        let mut r = BitReader::new(&buf);
        let mut out = Vec::new();
        OutlierBitmap::decode(&mut r, parts.len(), &mut out).unwrap();
        assert_eq!(out, parts);
    }

    #[test]
    fn all_center_is_one_bit_each() {
        let parts = vec![Part::Center; 64];
        let mut w = BitWriter::new();
        let bits = OutlierBitmap::encode(&parts, &mut w);
        assert_eq!(bits, 64);
    }

    #[test]
    fn truncated_stream_is_none() {
        let parts = vec![Part::Upper; 4];
        let mut w = BitWriter::new();
        OutlierBitmap::encode(&parts, &mut w);
        let (buf, _) = w.finish();
        // 8 bits fit exactly in 1 byte; ask for more symbols than present.
        let mut r = BitReader::new(&buf);
        let mut out = Vec::new();
        assert!(OutlierBitmap::decode(&mut r, 5, &mut out).is_err());
    }
}
