//! Classic fixed-width bit-packing of unsigned integer slices.
//!
//! This is the operator the paper improves on: every value of a block is
//! stored with the same width `⌈log2(max − min + 1)⌉` after subtracting the
//! block minimum (frame of reference).

use crate::bits::{BitReader, BitWriter};
use crate::error::{DecodeError, DecodeResult};
use crate::width::width;
use crate::zigzag::{read_len_bounded, read_varint, write_varint};

/// Packs each value with exactly `w` bits into `out`.
///
/// Values must fit in `w` bits (`debug_assert`ed); the caller picks `w`
/// via [`width::width`](crate::width::width) of the maximum.
pub fn pack_into(values: &[u64], w: u32, out: &mut BitWriter) {
    debug_assert!(values.iter().all(|&v| width(v) <= w));
    for &v in values {
        out.write_bits(v, w);
    }
}

/// Unpacks `n` values of width `w` from the reader. Fails with
/// [`DecodeError::Truncated`] if the stream is too short.
pub fn unpack_from(
    reader: &mut BitReader<'_>,
    w: u32,
    n: usize,
    out: &mut Vec<u64>,
) -> DecodeResult<()> {
    out.reserve(n);
    for _ in 0..n {
        out.push(reader.read_bits(w)?);
    }
    Ok(())
}

/// Self-describing frame-of-reference bit-packed block:
/// `varint n | varint min | byte w | n × w bits payload` (byte aligned at
/// the end). This is the "BP" operator of the experiments.
pub fn bp_encode(values: &[u64], out: &mut Vec<u8>) {
    write_varint(out, values.len() as u64);
    if values.is_empty() {
        return;
    }
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    let w = width(max - min);
    write_varint(out, min);
    out.push(w as u8);
    let mut bw = BitWriter::with_capacity_bits(values.len().saturating_mul(w as usize));
    for &v in values {
        bw.write_bits(v - min, w);
    }
    out.extend_from_slice(&bw.into_bytes());
}

/// Decodes a [`bp_encode`] block from `buf[*pos..]`, advancing `pos`.
pub fn bp_decode(buf: &[u8], pos: &mut usize, out: &mut Vec<u64>) -> DecodeResult<()> {
    let n = read_len_bounded(buf, pos, crate::MAX_BLOCK_VALUES)?;
    if n == 0 {
        return Ok(());
    }
    let min = read_varint(buf, pos)?;
    let w = *buf.get(*pos).ok_or(DecodeError::Truncated)? as u32;
    *pos += 1;
    if w > 64 {
        return Err(DecodeError::WidthOverflow { width: w });
    }
    let payload_bytes = (n * w as usize).div_ceil(8);
    let payload_end = pos
        .checked_add(payload_bytes)
        .ok_or(DecodeError::Truncated)?;
    let payload = buf.get(*pos..payload_end).ok_or(DecodeError::Truncated)?;
    *pos = payload_end;
    let mut reader = BitReader::new(payload);
    out.reserve(n);
    for _ in 0..n {
        out.push(
            min.checked_add(reader.read_bits(w)?)
                .ok_or(DecodeError::ValueOverflow)?,
        );
    }
    Ok(())
}

/// Exact number of bytes [`bp_encode`] produces for `values`, without
/// encoding. Used by cost comparisons in benchmarks.
pub fn bp_encoded_size(values: &[u64]) -> usize {
    let mut header = Vec::with_capacity(16);
    write_varint(&mut header, values.len() as u64);
    if values.is_empty() {
        return header.len();
    }
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    write_varint(&mut header, min);
    header.len()
        + 1
        + values
            .len()
            .saturating_mul(width(max - min) as usize)
            .div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64]) {
        let mut buf = Vec::new();
        bp_encode(values, &mut buf);
        assert_eq!(buf.len(), bp_encoded_size(values));
        let mut pos = 0;
        let mut out = Vec::new();
        bp_decode(&buf, &mut pos, &mut out).expect("decode");
        assert_eq!(out, values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn roundtrip_basic() {
        roundtrip(&[3, 2, 4, 5, 3, 2, 0, 8]); // the paper's intro series
        roundtrip(&[]);
        roundtrip(&[42]);
        roundtrip(&[7; 100]); // constant block: zero payload bits
        roundtrip(&[0, u64::MAX]);
    }

    #[test]
    fn overflowing_min_plus_offset_is_value_overflow() {
        // Hand-built block claiming min = u64::MAX with a one-bit payload
        // of 1: min + 1 must surface as ValueOverflow, never wrap.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1); // n = 1
        write_varint(&mut buf, u64::MAX); // min
        buf.push(1); // w = 1
        buf.push(0xFF); // the single offset bit is set
        let mut pos = 0;
        let mut out = Vec::new();
        assert_eq!(
            bp_decode(&buf, &mut pos, &mut out),
            Err(DecodeError::ValueOverflow)
        );
    }

    #[test]
    fn constant_block_has_no_payload() {
        let mut buf = Vec::new();
        bp_encode(&[9; 1000], &mut buf);
        // varint n (2 bytes) + varint min (1) + width byte (1), no payload.
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn pack_unpack_low_level() {
        let values: Vec<u64> = (0..200).map(|i| i % 31).collect();
        let mut w = BitWriter::new();
        pack_into(&values, 5, &mut w);
        let (buf, bits) = w.finish();
        assert_eq!(bits, 200 * 5);
        let mut r = BitReader::new(&buf);
        let mut out = Vec::new();
        unpack_from(&mut r, 5, 200, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut buf = Vec::new();
        bp_encode(&[1, 2, 3, 400], &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        assert!(bp_decode(&buf[..buf.len() - 1], &mut pos, &mut out).is_err());
    }

    #[test]
    fn decode_rejects_bad_width() {
        // n=1, min=0, w=65 → invalid
        let buf = [1u8, 0, 65, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut pos = 0;
        let mut out = Vec::new();
        assert!(bp_decode(&buf, &mut pos, &mut out).is_err());
    }

    #[test]
    fn outlier_inflates_bp_size() {
        // Motivation check: one upper outlier forces every value to 4 bits.
        let no_outlier = [3u64, 2, 4, 5, 3, 2, 2, 3];
        let with_outlier = [3u64, 2, 4, 5, 3, 2, 0, 8];
        assert!(bp_encoded_size(&with_outlier) > bp_encoded_size(&no_outlier));
    }
}
