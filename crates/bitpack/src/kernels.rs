//! Word-at-a-time fixed-width packing kernels.
//!
//! [`BitWriter`](crate::bits::BitWriter) is flexible but writes through a
//! per-bit-position loop. The plain-BP operator spends nearly all of its
//! time packing long runs of *equal-width* values, for which a much faster
//! shape exists: accumulate into a 64-bit word and spill whole words
//! (the scalar version of the word-aligned kernels FastPFOR-style codecs
//! use). These kernels are drop-in equivalent to the generic path — a
//! property test asserts bit-identical output — and are used by
//! `pfor::BpCodec` and the other frame-of-reference hot loops.
//!
//! Layout note: to keep words independent, kernels emit values
//! **LSB-first within little-endian 64-bit words**, which differs from the
//! MSB-first `BitWriter` stream. Each kernel pair is self-consistent; the
//! equivalence test compares decoded values, not raw bytes.

use crate::error::{DecodeError, DecodeResult};
use crate::width::width;

/// Packs `values` with fixed `w` bits each into little-endian 64-bit
/// words, appended to `out`. Values must fit in `w` bits.
///
/// Returns the number of bytes appended (`ceil(len·w / 64) · 8`, i.e. the
/// payload is padded to whole words).
pub fn pack_words(values: &[u64], w: u32, out: &mut Vec<u8>) -> usize {
    debug_assert!(w <= 64);
    debug_assert!(values.iter().all(|&v| width(v) <= w));
    let before = out.len();
    if w == 0 || values.is_empty() {
        return 0;
    }
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    for &v in values {
        if filled + w <= 64 {
            acc |= v << filled;
            filled += w;
            if filled == 64 {
                out.extend_from_slice(&acc.to_le_bytes());
                acc = 0;
                filled = 0;
            }
        } else {
            // Straddles a word boundary: low part now, high part next.
            acc |= v << filled;
            out.extend_from_slice(&acc.to_le_bytes());
            let low_bits = 64 - filled;
            acc = v >> low_bits;
            filled = w - low_bits;
        }
    }
    if filled > 0 {
        out.extend_from_slice(&acc.to_le_bytes());
    }
    out.len() - before
}

/// Exact byte size [`pack_words`] produces for `n` values of width `w`, or
/// `None` if `n · w` overflows `usize` (possible on 32-bit targets or with
/// an adversarial decoded count — decoders map this to
/// [`DecodeError::CountOverflow`]).
pub fn packed_size(n: usize, w: u32) -> Option<usize> {
    if w == 0 || n == 0 {
        Some(0)
    } else {
        n.checked_mul(w as usize)
            .map(|bits| bits.div_ceil(64))
            .and_then(|words| words.checked_mul(8))
    }
}

/// Unpacks `n` values of width `w` from `buf`, appending to `out`.
/// Returns the number of bytes consumed; fails with
/// [`DecodeError::Truncated`] if `buf` is too short.
pub fn unpack_words(buf: &[u8], n: usize, w: u32, out: &mut Vec<u64>) -> DecodeResult<usize> {
    debug_assert!(w <= 64);
    if w == 0 {
        out.extend(std::iter::repeat_n(0, n));
        return Ok(0);
    }
    if n == 0 {
        return Ok(0);
    }
    let bytes = packed_size(n, w).ok_or(DecodeError::CountOverflow { claimed: n as u64 })?;
    let payload = buf.get(..bytes).ok_or(DecodeError::Truncated)?;
    out.reserve(n);
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    let mut word_idx = 0usize;
    let mut acc = read_word_exact(payload, 0);
    let mut avail: u32 = 64;
    for _ in 0..n {
        let v = if avail >= w {
            let v = acc & mask;
            acc = if w == 64 { 0 } else { acc >> w };
            avail -= w;
            v
        } else {
            // Straddle: combine the tail of this word with the next.
            let low = acc;
            word_idx += 1;
            acc = read_word_exact(payload, word_idx);
            let v = (low | (acc << avail)) & mask;
            let high_bits = w - avail;
            acc = if high_bits == 64 { 0 } else { acc >> high_bits };
            avail = 64 - high_bits;
            v
        };
        out.push(v);
        if avail == 0 {
            word_idx += 1;
            if word_idx * 8 < payload.len() {
                acc = read_word_exact(payload, word_idx);
            }
            avail = 64;
        }
    }
    Ok(bytes)
}

/// Reads word `idx` from a payload the caller has already validated to hold
/// it (via [`packed_size`]). A short read here would mean a decoder bug, so
/// rather than silently yielding 0 (which would mask it as wrong data) this
/// asserts in debug builds and lets the slice index panic surface in the
/// worst case.
#[inline]
pub(crate) fn read_word_exact(payload: &[u8], idx: usize) -> u64 {
    let start = idx * 8;
    debug_assert!(
        start + 8 <= payload.len(),
        "read_word_exact past validated payload: word {idx} of {} bytes",
        payload.len()
    );
    let mut word = [0u8; 8];
    word.copy_from_slice(&payload[start..start + 8]); // lint:allow(no-indexing): caller validated the payload length via packed_size
    u64::from_le_bytes(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64], w: u32) {
        let mut buf = Vec::new();
        let written = pack_words(values, w, &mut buf);
        assert_eq!(Some(written), packed_size(values.len(), w));
        let mut out = Vec::new();
        let consumed = unpack_words(&buf, values.len(), w, &mut out).expect("unpack");
        assert_eq!(consumed, written);
        assert_eq!(out, values, "w = {w}");
    }

    #[test]
    fn roundtrip_every_width() {
        for w in 0..=64u32 {
            let mask = if w == 0 {
                0
            } else if w == 64 {
                u64::MAX
            } else {
                (1u64 << w) - 1
            };
            let values: Vec<u64> = (0..137u64)
                .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15)) & mask)
                .collect();
            roundtrip(&values, w);
        }
    }

    #[test]
    fn roundtrip_boundary_counts() {
        // Counts that land exactly on / just around word boundaries.
        for w in [1u32, 3, 7, 8, 13, 21, 32, 33, 63, 64] {
            for n in [0usize, 1, 2, 63, 64, 65, 128] {
                let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                let values: Vec<u64> = (0..n as u64).map(|i| i & mask).collect();
                roundtrip(&values, w);
            }
        }
    }

    #[test]
    fn zero_width_is_free() {
        let mut buf = Vec::new();
        assert_eq!(pack_words(&[0, 0, 0], 0, &mut buf), 0);
        assert!(buf.is_empty());
        let mut out = Vec::new();
        assert_eq!(unpack_words(&[], 3, 0, &mut out), Ok(0));
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn short_buffer_is_none() {
        let mut buf = Vec::new();
        pack_words(&[1, 2, 3], 33, &mut buf);
        let mut out = Vec::new();
        assert!(unpack_words(&buf[..buf.len() - 1], 3, 33, &mut out).is_err());
    }

    #[test]
    fn max_width_values() {
        roundtrip(&[u64::MAX, 0, u64::MAX, 1, u64::MAX - 1], 64);
    }

    #[test]
    fn packed_size_overflow_is_none() {
        assert_eq!(packed_size(usize::MAX, 64), None);
        assert_eq!(packed_size(usize::MAX / 2, 3), None);
        assert_eq!(packed_size(usize::MAX, 0), Some(0));
        assert_eq!(packed_size(64, 7), Some(56));
    }

    #[test]
    fn overflowing_count_is_typed_error() {
        let mut out = Vec::new();
        assert_eq!(
            unpack_words(&[], usize::MAX, 64, &mut out),
            Err(DecodeError::CountOverflow {
                claimed: usize::MAX as u64
            })
        );
    }
}
