//! Zigzag signed↔unsigned mapping and LEB128 varints.
//!
//! Delta streams produced by TS2DIFF/SPRINTZ are signed and centered near
//! zero; zigzag folds them into small unsigned integers that bit-packing can
//! exploit. Block headers (counts, minima) are stored as varints so small
//! blocks stay small.

use crate::error::{DecodeError, DecodeResult};

/// Maps `i64` to `u64` such that small-magnitude values map to small
/// unsigned values: 0→0, −1→1, 1→2, −2→3, …
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (1–10 bytes).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf[*pos..]`, advancing `pos`.
///
/// Fails with [`DecodeError::Truncated`] if the buffer ends mid-varint and
/// [`DecodeError::VarintOverflow`] if the encoding runs past 64 bits.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> DecodeResult<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::VarintOverflow);
        }
    }
}

/// Reads a varint-encoded *length* and checks it against the largest value
/// its context can possibly hold before anything is allocated from it.
///
/// Every length field a decoder reads from untrusted bytes (element counts,
/// name lengths, payload sizes, footer entry counts) must come through here
/// rather than `read_varint(..)? as usize`: a corrupt 8-byte varint would
/// otherwise size a multi-gigabyte `Vec` reservation from ten bytes of
/// garbage. The `xtask lint` rule `len-read-bounded` holds the decode
/// modules to this.
///
/// `bound` is inclusive. Fails with [`DecodeError::LengthOverrun`] when the
/// claim exceeds it (and propagates `Truncated`/`VarintOverflow` from the
/// underlying varint read).
#[inline]
pub fn read_len_bounded(buf: &[u8], pos: &mut usize, bound: usize) -> DecodeResult<usize> {
    let claimed = read_varint(buf, pos)?;
    if claimed > bound as u64 {
        return Err(DecodeError::LengthOverrun {
            claimed,
            bound: bound as u64,
        });
    }
    Ok(claimed as usize)
}

/// Appends a signed value as zigzag varint.
#[inline]
pub fn write_varint_i64(out: &mut Vec<u8>, v: i64) {
    write_varint(out, zigzag_encode(v));
}

/// Reads a zigzag varint as a signed value.
#[inline]
pub fn read_varint_i64(buf: &[u8], pos: &mut usize) -> DecodeResult<i64> {
    read_varint(buf, pos).map(zigzag_decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_known_values() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(2), 4);
        assert_eq!(zigzag_encode(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0, 1, -1, i64::MAX, i64::MIN, 42, -42, 1 << 62, -(1 << 62)] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        let values = [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
            u64::MAX - 1,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_sizes() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn varint_truncation_is_none() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(
            read_varint(&buf[..5], &mut pos),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn varint_overlong_rejected() {
        // 11 continuation bytes can never be a valid u64 varint.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(
            read_varint(&buf, &mut pos),
            Err(DecodeError::VarintOverflow)
        );
    }

    #[test]
    fn len_bounded_accepts_up_to_the_bound() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 100);
        let mut pos = 0;
        assert_eq!(read_len_bounded(&buf, &mut pos, 100), Ok(100));
        assert_eq!(pos, buf.len());
        let mut pos = 0;
        assert_eq!(read_len_bounded(&buf, &mut pos, usize::MAX), Ok(100));
    }

    #[test]
    fn len_bounded_rejects_overrun_before_allocation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX - 3);
        let mut pos = 0;
        assert_eq!(
            read_len_bounded(&buf, &mut pos, 1 << 20),
            Err(DecodeError::LengthOverrun {
                claimed: u64::MAX - 3,
                bound: 1 << 20
            })
        );
        // Off-by-one: bound is inclusive.
        let mut buf = Vec::new();
        write_varint(&mut buf, 101);
        let mut pos = 0;
        assert_eq!(
            read_len_bounded(&buf, &mut pos, 100),
            Err(DecodeError::LengthOverrun {
                claimed: 101,
                bound: 100
            })
        );
    }

    #[test]
    fn len_bounded_propagates_varint_errors() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(
            read_len_bounded(&buf[..4], &mut pos, 10),
            Err(DecodeError::Truncated)
        );
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(
            read_len_bounded(&overlong, &mut pos, 10),
            Err(DecodeError::VarintOverflow)
        );
    }

    #[test]
    fn signed_varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0i64, -1, 1, i64::MIN, i64::MAX, -123456789];
        for &v in &values {
            write_varint_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint_i64(&buf, &mut pos), Ok(v));
        }
    }
}
