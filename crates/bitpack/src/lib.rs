//! Bit-level substrate for the BOS reproduction.
//!
//! This crate provides everything below the compression algorithms:
//!
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit streams over byte buffers.
//! * [`mod@width`] — bit-width arithmetic (`⌈log2(x+1)⌉` and friends) used by the
//!   cost model of the paper (Definition 1 / 5).
//! * [`zigzag`] — zigzag mapping between signed and unsigned integers and
//!   LEB128 varints, used by block headers and delta encoders.
//! * [`pack`] — fixed-width packing of `u64` slices (classic bit-packing).
//! * [`kernels`] — word-at-a-time pack/unpack kernels for the hot
//!   uniform-width paths.
//! * [`unrolled`] — width-specialized fully unrolled lane kernels plus
//!   fused frame-of-reference pack/unpack, bit-identical to [`kernels`]
//!   and dispatched through a `[fn; 65]` width table (DESIGN.md §8).
//! * [`codec`] — the unified [`BlockCodec`] trait every integer block
//!   codec in the workspace implements (re-exported by `pfor` and
//!   `encodings`), plus the shared multi-block parallel encode driver.
//! * [`bitmap`] — the `0` / `10` / `11` outlier-position bitmap of Figure 2.
//! * [`simple8b`] — the word-aligned Simple8b codec used to store PFOR
//!   exception streams (stand-in for Simple16; see DESIGN.md §2).
//!
//! All codecs are lossless and panic-free on untrusted input lengths: readers
//! return `Err(`[`DecodeError`]`)` instead of reading out of bounds. The
//! [`error`] module defines that single shared error enum; every decoder in
//! the workspace (bos, pfor, encodings, floatcodec, gpcomp, tsfile, query)
//! propagates it unchanged.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmap;
pub mod bits;
pub mod codec;
pub mod error;
pub mod kernels;
pub mod pack;
pub mod simple8b;
pub mod unrolled;
pub mod width;
pub mod zigzag;

pub use bitmap::{OutlierBitmap, Part};
pub use bits::{BitReader, BitWriter};
pub use codec::{BlockCodec, EncodeSession};
pub use error::{DecodeError, DecodeResult, EncodeError};
pub use width::{bit_width, width, width1};
pub use zigzag::{zigzag_decode, zigzag_encode};

/// Decoder sanity limit: a single block claiming more than this many values
/// is rejected as corrupt before any allocation happens.
///
/// Zero-width payloads make the claimed count impossible to validate
/// against the buffer length (a constant block of a billion values is one
/// header), so every decoder in this workspace enforces this cap instead of
/// trusting the length prefix. 2^24 values (128 MiB of `i64`) is three
/// orders of magnitude above the paper's largest block (2^13).
pub const MAX_BLOCK_VALUES: usize = 1 << 24;
