//! The shared typed error for every decode path in the workspace.
//!
//! All decoders — bit-level primitives here in `bitpack`, the BOS block
//! format in `bos`, the PFOR family, the outer encodings, float codecs,
//! general-purpose decompressors, and the `tsfile`/`query` readers — report
//! failure through this one enum. A decoder must never panic on malformed
//! input; the `xtask lint` gate enforces that the decode modules listed in
//! `lint.toml` contain no `unwrap`/`expect`/`panic!`/unchecked indexing, and
//! the adversarial proptests feed random, truncated, and bit-flipped buffers
//! to confirm every failure surfaces as a `DecodeError`.

use std::fmt;

/// Why a decode failed. Carried unchanged from the innermost primitive
/// (e.g. [`crate::BitReader`]) to the outermost API (`tsfile`, `query`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input ended before the declared payload did.
    Truncated,
    /// A mode/tag byte holds a value the format does not define.
    BadModeByte {
        /// The unrecognised byte as read from the stream.
        mode: u8,
    },
    /// A bit-width field exceeds 64 and can never describe a `u64` payload.
    WidthOverflow {
        /// The out-of-range width as read from the stream.
        width: u32,
    },
    /// A varint ran past 10 bytes / 64 bits of payload.
    VarintOverflow,
    /// A count field (block length, run length, part count, …) exceeds the
    /// decoder's sanity cap ([`crate::MAX_BLOCK_VALUES`]) or its context.
    CountOverflow {
        /// The implausible count as read from the stream.
        claimed: u64,
    },
    /// The position bitmap's per-part counts disagree with the block header.
    BitmapCountMismatch {
        /// Lower-outlier count claimed by the header.
        header_lower: usize,
        /// Upper-outlier count claimed by the header.
        header_upper: usize,
        /// Lower-outlier positions actually present in the bitmap.
        bitmap_lower: usize,
        /// Upper-outlier positions actually present in the bitmap.
        bitmap_upper: usize,
    },
    /// Reconstructing a value overflowed its integer type (e.g. base +
    /// packed offset left `i64` range).
    ValueOverflow,
    /// A section's decoded size disagrees with the size its header declared.
    LengthMismatch {
        /// Size the header promised.
        expected: usize,
        /// Size actually produced or consumed.
        got: usize,
    },
    /// A varint-claimed length exceeds what its context can possibly hold
    /// (bytes remaining in the buffer, values remaining in the block, …).
    /// Raised by [`crate::zigzag::read_len_bounded`] before any allocation
    /// is sized from the claim, so a corrupt 8-byte varint can never drive
    /// a multi-gigabyte `Vec` reservation.
    LengthOverrun {
        /// The length as read from the stream.
        claimed: u64,
        /// The largest length the surrounding context allows.
        bound: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Truncated => write!(f, "input truncated mid-field"),
            DecodeError::BadModeByte { mode } => {
                write!(f, "unrecognised mode byte {mode:#04x}")
            }
            DecodeError::WidthOverflow { width } => {
                write!(f, "bit width {width} exceeds 64")
            }
            DecodeError::VarintOverflow => {
                write!(f, "varint exceeds 64 bits")
            }
            DecodeError::CountOverflow { claimed } => {
                write!(f, "count field {claimed} exceeds decoder limits")
            }
            DecodeError::BitmapCountMismatch {
                header_lower,
                header_upper,
                bitmap_lower,
                bitmap_upper,
            } => write!(
                f,
                "position bitmap holds {bitmap_lower} lower / {bitmap_upper} upper \
                 outliers but header claims {header_lower} / {header_upper}"
            ),
            DecodeError::ValueOverflow => {
                write!(f, "reconstructed value overflows its integer type")
            }
            DecodeError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "section length mismatch: header says {expected}, got {got}"
                )
            }
            DecodeError::LengthOverrun { claimed, bound } => {
                write!(
                    f,
                    "length field {claimed} exceeds its context bound {bound}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Shorthand for decode results throughout the workspace.
pub type DecodeResult<T> = Result<T, DecodeError>;

/// Why an encode failed. Encoders see trusted in-memory values, so the only
/// failure class today is infrastructure: a worker thread (or the codec it
/// ran) panicking inside the parallel block driver. The driver contains the
/// panic with `catch_unwind` and reports it as a value instead of poisoning
/// the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// A codec panicked while encoding the given block index. The output
    /// buffer is left exactly as it was on entry.
    WorkerPanicked {
        /// Zero-based index of the first block whose encode panicked.
        block: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodeError::WorkerPanicked { block } => {
                write!(
                    f,
                    "codec panicked while encoding block {block}; output rolled back"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            DecodeError::Truncated.to_string(),
            "input truncated mid-field"
        );
        assert!(DecodeError::BadModeByte { mode: 0xAB }
            .to_string()
            .contains("0xab"));
        assert!(DecodeError::WidthOverflow { width: 65 }
            .to_string()
            .contains("65"));
        assert!(DecodeError::CountOverflow { claimed: 1 << 40 }
            .to_string()
            .contains(&(1u64 << 40).to_string()));
        let m = DecodeError::BitmapCountMismatch {
            header_lower: 1,
            header_upper: 2,
            bitmap_lower: 3,
            bitmap_upper: 4,
        };
        let s = m.to_string();
        for part in ["1", "2", "3", "4"] {
            assert!(s.contains(part), "{s} missing {part}");
        }
        assert!(DecodeError::LengthMismatch {
            expected: 9,
            got: 7
        }
        .to_string()
        .contains('9'));
        let s = DecodeError::LengthOverrun {
            claimed: 1 << 50,
            bound: 4096,
        }
        .to_string();
        assert!(
            s.contains(&(1u64 << 50).to_string()) && s.contains("4096"),
            "{s}"
        );
        let s = EncodeError::WorkerPanicked { block: 17 }.to_string();
        assert!(s.contains("17"), "{s}");
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(DecodeError::VarintOverflow);
        assert!(e.to_string().contains("varint"));
    }
}
