//! Width-specialized unrolled pack/unpack kernels and fused
//! frame-of-reference variants.
//!
//! [`pack_words`](crate::kernels::pack_words) /
//! [`unpack_words`](crate::kernels::unpack_words) are generic over the bit
//! width `w`: one branchy loop handles every width, paying a straddle check
//! and a variable shift per value. The word-aligned codec literature
//! (FastPFOR and friends) replaces that loop with one *specialized* kernel
//! per width, where every shift amount and word index is a compile-time
//! constant and the straddle branches disappear entirely. This module is
//! that kernel layer (DESIGN.md §8):
//!
//! * `pack_w1..=pack_w64` / `unpack_w1..=unpack_w64` — macro-generated
//!   lane kernels. Each packs/unpacks one **lane of 64 values** into/from
//!   exactly `w` little-endian 64-bit words. The loop body is monomorphized
//!   over a const-generic width, so the 64-iteration loop fully unrolls and
//!   constant-folds (the "unrolled" of the module name).
//! * [`PACK_LANE`] / [`UNPACK_LANE`] — `[fn; 65]` dispatch tables indexed
//!   by width (entry 0 is the zero-width no-op kernel). The `xtask lint`
//!   `kernel-table-complete` rule checks both tables cover all 65 widths.
//! * [`pack_words_unrolled`] / [`unpack_words_unrolled`] — drop-in,
//!   **bit-identical** replacements for the generic kernels: full lanes go
//!   through the dispatch table, the `n % 64` tail values fall back to the
//!   generic kernel (a lane boundary is always a word boundary, so the two
//!   code paths compose into the exact `pack_words` layout).
//! * [`pack_words_for`] / [`unpack_words_for`] — fused frame-of-reference
//!   variants: subtract-then-pack and unpack-then-add in one pass, so hot
//!   paths (`pfor::BpCodec`, the NewPFD slot stream, the three BOS
//!   sub-streams) never materialize an intermediate delta vector.
//!
//! Layout contract: identical to `pack_words` — values LSB-first within
//! little-endian `u64` words, payload padded to whole words
//! (`packed_size(n, w)` bytes). A property test asserts byte-identical
//! output against the generic kernels for every width 0..=64.

use crate::error::{DecodeError, DecodeResult};
use crate::kernels::{self, packed_size};

/// Values per lane: one lane of 64 values at width `w` occupies exactly
/// `w` 64-bit words, so lanes never straddle each other.
pub const LANE: usize = 64;

/// A lane pack kernel: reads `LANE` values, ORs them into the first `w`
/// words of `out` (which the caller must have zeroed). Fixed-size array
/// references keep every trip count and word index a compile-time
/// constant, so the monomorphized bodies compile to straight-line code
/// with no bounds checks.
pub type PackLaneFn = fn(values: &[u64; LANE], out: &mut [u64; LANE]);

/// A lane unpack kernel: reads the first `w` words, writes `LANE` values.
pub type UnpackLaneFn = fn(words: &[u64; LANE], out: &mut [u64; LANE]);

/// Expands `$body` once per lane index, with `$i` bound to the literal
/// index 0..=63. A plain `for i in 0..LANE` loop is at the mercy of
/// LLVM's full-unroll threshold — at most widths it stays a rolled loop
/// with runtime shifts, no faster than the generic kernel. Source-level
/// expansion guarantees straight-line code: every `i * w / 64` word index
/// and `i * w % 64` shift amount is a compile-time constant and the
/// straddle `if` folds away.
macro_rules! unroll_lane {
    ($i:ident, $body:expr) => {
        unroll_lane!(@expand $i, $body,
            0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
            16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31,
            32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47,
            48, 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63)
    };
    (@expand $i:ident, $body:expr, $($idx:literal),+) => {
        $( { let $i: usize = $idx; $body } )+
    };
}

/// Shared monomorphized body of the width-`W` pack kernels: `W` is a
/// compile-time constant and [`unroll_lane!`] expands the 64 steps as
/// straight-line statements, so every `word`/`shift` becomes a constant,
/// bounds checks on the fixed-size arrays vanish and the straddle `if`
/// is resolved statically.
#[inline(always)]
fn pack_lane<const W: u32>(values: &[u64; LANE], out: &mut [u64; LANE]) {
    let w = W as usize;
    unroll_lane!(i, {
        let v = values[i]; // lint:allow(no-indexing): i is a literal < LANE
        let bit = i * w;
        let word = bit / 64;
        let shift = bit % 64;
        out[word] |= v << shift; // lint:allow(no-indexing): word < W <= 64 is a constant after expansion
        if shift + w > 64 {
            out[word + 1] |= v >> (64 - shift); // lint:allow(no-indexing): a straddle never starts in the last word, so word + 1 < W <= 64
        }
    });
}

/// Shared monomorphized body of the width-`W` unpack kernels (see
/// [`pack_lane`] for why the steps are macro-expanded).
#[inline(always)]
fn unpack_lane<const W: u32>(words: &[u64; LANE], out: &mut [u64; LANE]) {
    let w = W as usize;
    let mask = if W == 64 { u64::MAX } else { (1u64 << W) - 1 };
    unroll_lane!(i, {
        let bit = i * w;
        let word = bit / 64;
        let shift = bit % 64;
        let mut v = words[word] >> shift; // lint:allow(no-indexing): word < W <= 64 is a constant after expansion
        if shift + w > 64 {
            v |= words[word + 1] << (64 - shift); // lint:allow(no-indexing): a straddle never starts in the last word, so word + 1 < W <= 64
        }
        out[i] = v & mask; // lint:allow(no-indexing): i is a literal < LANE
    });
}

/// Packs one lane at width 0: nothing to store.
pub fn pack_w0(_values: &[u64; LANE], _out: &mut [u64; LANE]) {}

/// Unpacks one lane at width 0: all values are zero.
pub fn unpack_w0(_words: &[u64; LANE], out: &mut [u64; LANE]) {
    out.fill(0);
}

/// Generates the named width-specialized wrappers `pack_wN` / `unpack_wN`
/// around the const-generic lane bodies.
macro_rules! lane_kernels {
    ($(($w:literal, $pack:ident, $unpack:ident)),+ $(,)?) => {
        $(
            #[doc = concat!("Packs one 64-value lane at width ", stringify!($w), " into ", stringify!($w), " little-endian words (fully unrolled).")]
            pub fn $pack(values: &[u64; LANE], out: &mut [u64; LANE]) {
                pack_lane::<$w>(values, out);
            }
            #[doc = concat!("Unpacks one 64-value lane at width ", stringify!($w), " from ", stringify!($w), " little-endian words (fully unrolled).")]
            pub fn $unpack(words: &[u64; LANE], out: &mut [u64; LANE]) {
                unpack_lane::<$w>(words, out);
            }
        )+
    };
}

lane_kernels!(
    (1, pack_w1, unpack_w1),
    (2, pack_w2, unpack_w2),
    (3, pack_w3, unpack_w3),
    (4, pack_w4, unpack_w4),
    (5, pack_w5, unpack_w5),
    (6, pack_w6, unpack_w6),
    (7, pack_w7, unpack_w7),
    (8, pack_w8, unpack_w8),
    (9, pack_w9, unpack_w9),
    (10, pack_w10, unpack_w10),
    (11, pack_w11, unpack_w11),
    (12, pack_w12, unpack_w12),
    (13, pack_w13, unpack_w13),
    (14, pack_w14, unpack_w14),
    (15, pack_w15, unpack_w15),
    (16, pack_w16, unpack_w16),
    (17, pack_w17, unpack_w17),
    (18, pack_w18, unpack_w18),
    (19, pack_w19, unpack_w19),
    (20, pack_w20, unpack_w20),
    (21, pack_w21, unpack_w21),
    (22, pack_w22, unpack_w22),
    (23, pack_w23, unpack_w23),
    (24, pack_w24, unpack_w24),
    (25, pack_w25, unpack_w25),
    (26, pack_w26, unpack_w26),
    (27, pack_w27, unpack_w27),
    (28, pack_w28, unpack_w28),
    (29, pack_w29, unpack_w29),
    (30, pack_w30, unpack_w30),
    (31, pack_w31, unpack_w31),
    (32, pack_w32, unpack_w32),
    (33, pack_w33, unpack_w33),
    (34, pack_w34, unpack_w34),
    (35, pack_w35, unpack_w35),
    (36, pack_w36, unpack_w36),
    (37, pack_w37, unpack_w37),
    (38, pack_w38, unpack_w38),
    (39, pack_w39, unpack_w39),
    (40, pack_w40, unpack_w40),
    (41, pack_w41, unpack_w41),
    (42, pack_w42, unpack_w42),
    (43, pack_w43, unpack_w43),
    (44, pack_w44, unpack_w44),
    (45, pack_w45, unpack_w45),
    (46, pack_w46, unpack_w46),
    (47, pack_w47, unpack_w47),
    (48, pack_w48, unpack_w48),
    (49, pack_w49, unpack_w49),
    (50, pack_w50, unpack_w50),
    (51, pack_w51, unpack_w51),
    (52, pack_w52, unpack_w52),
    (53, pack_w53, unpack_w53),
    (54, pack_w54, unpack_w54),
    (55, pack_w55, unpack_w55),
    (56, pack_w56, unpack_w56),
    (57, pack_w57, unpack_w57),
    (58, pack_w58, unpack_w58),
    (59, pack_w59, unpack_w59),
    (60, pack_w60, unpack_w60),
    (61, pack_w61, unpack_w61),
    (62, pack_w62, unpack_w62),
    (63, pack_w63, unpack_w63),
    (64, pack_w64, unpack_w64),
);

/// Width-indexed dispatch table over the lane pack kernels: `PACK_LANE[w]`
/// packs one 64-value lane at width `w`. Covers every width 0..=64; the
/// `kernel-table-complete` lint rule verifies the table stays exhaustive
/// and in width order.
pub const PACK_LANE: [PackLaneFn; 65] = [
    pack_w0, pack_w1, pack_w2, pack_w3, pack_w4, pack_w5, pack_w6, pack_w7, pack_w8, pack_w9,
    pack_w10, pack_w11, pack_w12, pack_w13, pack_w14, pack_w15, pack_w16, pack_w17, pack_w18,
    pack_w19, pack_w20, pack_w21, pack_w22, pack_w23, pack_w24, pack_w25, pack_w26, pack_w27,
    pack_w28, pack_w29, pack_w30, pack_w31, pack_w32, pack_w33, pack_w34, pack_w35, pack_w36,
    pack_w37, pack_w38, pack_w39, pack_w40, pack_w41, pack_w42, pack_w43, pack_w44, pack_w45,
    pack_w46, pack_w47, pack_w48, pack_w49, pack_w50, pack_w51, pack_w52, pack_w53, pack_w54,
    pack_w55, pack_w56, pack_w57, pack_w58, pack_w59, pack_w60, pack_w61, pack_w62, pack_w63,
    pack_w64,
];

/// Width-indexed dispatch table over the lane unpack kernels:
/// `UNPACK_LANE[w]` unpacks one 64-value lane at width `w`. Covers every
/// width 0..=64 (see [`PACK_LANE`]).
pub const UNPACK_LANE: [UnpackLaneFn; 65] = [
    unpack_w0, unpack_w1, unpack_w2, unpack_w3, unpack_w4, unpack_w5, unpack_w6, unpack_w7,
    unpack_w8, unpack_w9, unpack_w10, unpack_w11, unpack_w12, unpack_w13, unpack_w14, unpack_w15,
    unpack_w16, unpack_w17, unpack_w18, unpack_w19, unpack_w20, unpack_w21, unpack_w22, unpack_w23,
    unpack_w24, unpack_w25, unpack_w26, unpack_w27, unpack_w28, unpack_w29, unpack_w30, unpack_w31,
    unpack_w32, unpack_w33, unpack_w34, unpack_w35, unpack_w36, unpack_w37, unpack_w38, unpack_w39,
    unpack_w40, unpack_w41, unpack_w42, unpack_w43, unpack_w44, unpack_w45, unpack_w46, unpack_w47,
    unpack_w48, unpack_w49, unpack_w50, unpack_w51, unpack_w52, unpack_w53, unpack_w54, unpack_w55,
    unpack_w56, unpack_w57, unpack_w58, unpack_w59, unpack_w60, unpack_w61, unpack_w62, unpack_w63,
    unpack_w64,
];

/// Appends one packed lane's first `w` words to `out` as little-endian
/// bytes via a single stack staging buffer (one `extend_from_slice` per
/// lane instead of one per word).
#[inline]
fn spill_words(words: &[u64; LANE], w: usize, out: &mut Vec<u8>) {
    let mut bytes = [0u8; LANE * 8];
    for (chunk, &word) in bytes.as_chunks_mut::<8>().0.iter_mut().zip(words.iter()) {
        *chunk = word.to_le_bytes();
    }
    out.extend_from_slice(&bytes[..w * 8]); // lint:allow(no-indexing): w <= 64, so w * 8 <= 512 = bytes.len()
}

/// Loads one lane's `w` little-endian words from its exact byte region.
#[inline]
fn load_lane_words(lane_bytes: &[u8], words: &mut [u64; LANE]) {
    for (slot, chunk) in words.iter_mut().zip(lane_bytes.as_chunks::<8>().0) {
        *slot = u64::from_le_bytes(*chunk);
    }
}

/// Packs `values` with fixed `w` bits each, bit-identical to
/// [`pack_words`](crate::kernels::pack_words), dispatching full 64-value
/// lanes through the unrolled kernel table. Values must fit in `w` bits.
/// Returns the number of bytes appended.
pub fn pack_words_unrolled(values: &[u64], w: u32, out: &mut Vec<u8>) -> usize {
    assert!(w <= 64, "width {w} exceeds 64");
    let before = out.len();
    if w == 0 || values.is_empty() {
        return 0;
    }
    let kernel = PACK_LANE[w as usize]; // lint:allow(no-indexing): w <= 64 asserted above, table has 65 entries
    let wn = w as usize;
    let mut scratch = [0u64; LANE];
    let (lanes, rem) = values.as_chunks::<LANE>();
    for lane in lanes {
        scratch[..wn].fill(0); // lint:allow(no-indexing): wn <= 64 = scratch.len()
        kernel(lane, &mut scratch);
        spill_words(&scratch, wn, out);
    }
    kernels::pack_words(rem, w, out);
    out.len() - before
}

/// Unpacks `n` values of width `w` from `buf`, bit-identical to
/// [`unpack_words`](crate::kernels::unpack_words), dispatching full lanes
/// through the unrolled kernel table. Returns the bytes consumed; fails
/// with [`DecodeError::Truncated`] on a short buffer.
pub fn unpack_words_unrolled(
    buf: &[u8],
    n: usize,
    w: u32,
    out: &mut Vec<u64>,
) -> DecodeResult<usize> {
    if w == 0 {
        out.extend(std::iter::repeat_n(0, n));
        return Ok(0);
    }
    if n == 0 {
        return Ok(0);
    }
    let Some(&kernel) = UNPACK_LANE.get(w as usize) else {
        return Err(DecodeError::WidthOverflow { width: w });
    };
    let bytes = packed_size(n, w).ok_or(DecodeError::CountOverflow { claimed: n as u64 })?;
    let payload = buf.get(..bytes).ok_or(DecodeError::Truncated)?;
    out.reserve(n);
    let wn = w as usize;
    let full = n / LANE;
    let start = out.len();
    // Unpack straight into the output vector: resize once, then each lane
    // kernel writes its 64 values in place (no per-lane scratch + memcpy).
    out.resize(start + full * LANE, 0);
    let lanes_out = out[start..].as_chunks_mut::<LANE>().0; // lint:allow(no-indexing): start was out.len() before the resize above
    let mut words = [0u64; LANE];
    for (lane_bytes, vals) in payload.chunks_exact(wn * 8).zip(lanes_out) {
        load_lane_words(lane_bytes, &mut words);
        kernel(&words, vals);
    }
    let tail = n - full * LANE;
    if tail > 0 {
        let tail_bytes = full * wn * 8;
        let rest = payload.get(tail_bytes..).ok_or(DecodeError::Truncated)?;
        kernels::unpack_words(rest, tail, w, out)?;
    }
    Ok(bytes)
}

/// Fused frame-of-reference pack: packs `(v − reference) mod 2^w` for each
/// value in one pass — the FOR subtraction and the bit-packing never
/// materialize an intermediate delta vector. Deltas are **masked to `w`
/// bits** (callers like the NewPFD slot stream rely on storing only the
/// low bits); when every delta fits `w` bits this is exactly
/// `for_transform` + `pack_words`. Returns the bytes appended
/// (`packed_size(values.len(), w)`).
pub fn pack_words_for(values: &[i64], reference: i64, w: u32, out: &mut Vec<u8>) -> usize {
    assert!(w <= 64, "width {w} exceeds 64");
    let before = out.len();
    if w == 0 || values.is_empty() {
        return 0;
    }
    let kernel = PACK_LANE[w as usize]; // lint:allow(no-indexing): w <= 64 asserted above, table has 65 entries
    let wn = w as usize;
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    let mut deltas = [0u64; LANE];
    let mut scratch = [0u64; LANE];
    let (lanes, rem) = values.as_chunks::<LANE>();
    for lane in lanes {
        for (slot, &v) in deltas.iter_mut().zip(lane.iter()) {
            *slot = (v.wrapping_sub(reference) as u64) & mask;
        }
        scratch[..wn].fill(0); // lint:allow(no-indexing): wn <= 64 = scratch.len()
        kernel(&deltas, &mut scratch);
        spill_words(&scratch, wn, out);
    }
    for (slot, &v) in deltas.iter_mut().zip(rem) {
        *slot = (v.wrapping_sub(reference) as u64) & mask;
    }
    kernels::pack_words(deltas.get(..rem.len()).unwrap_or(&[]), w, out);
    out.len() - before
}

/// Fused frame-of-reference unpack: appends `reference +w v` (wrapping) for
/// each unpacked value in one pass — the inverse of [`pack_words_for`] and
/// the fused form of `unpack_words` + restore. Returns the bytes consumed.
pub fn unpack_words_for(
    buf: &[u8],
    n: usize,
    w: u32,
    reference: i64,
    out: &mut Vec<i64>,
) -> DecodeResult<usize> {
    if w == 0 {
        out.extend(std::iter::repeat_n(reference, n));
        return Ok(0);
    }
    if n == 0 {
        return Ok(0);
    }
    let Some(&kernel) = UNPACK_LANE.get(w as usize) else {
        return Err(DecodeError::WidthOverflow { width: w });
    };
    let bytes = packed_size(n, w).ok_or(DecodeError::CountOverflow { claimed: n as u64 })?;
    let payload = buf.get(..bytes).ok_or(DecodeError::Truncated)?;
    out.reserve(n);
    let wn = w as usize;
    let full = n / LANE;
    let start = out.len();
    out.resize(start + full * LANE, 0);
    let lanes_out = out[start..].as_chunks_mut::<LANE>().0; // lint:allow(no-indexing): start was out.len() before the resize above
    let mut words = [0u64; LANE];
    let mut vals = [0u64; LANE];
    for (lane_bytes, lane_out) in payload.chunks_exact(wn * 8).zip(lanes_out) {
        load_lane_words(lane_bytes, &mut words);
        kernel(&words, &mut vals);
        for (slot, &v) in lane_out.iter_mut().zip(vals.iter()) {
            *slot = reference.wrapping_add(v as i64);
        }
    }
    let tail = n - full * LANE;
    if tail > 0 {
        let tail_bytes = full * wn * 8;
        let rest = payload.get(tail_bytes..).ok_or(DecodeError::Truncated)?;
        let mut raw = Vec::with_capacity(tail);
        kernels::unpack_words(rest, tail, w, &mut raw)?;
        out.extend(raw.into_iter().map(|v| reference.wrapping_add(v as i64)));
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{pack_words, unpack_words};

    fn masked(w: u32, seed: u64, n: usize) -> Vec<u64> {
        let mask = if w == 0 {
            0
        } else if w == 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        };
        (0..n as u64)
            .map(|i| (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15) & mask)
            .collect()
    }

    #[test]
    fn bit_identical_to_generic_every_width() {
        for w in 0..=64u32 {
            for n in [0usize, 1, 63, 64, 65, 127, 128, 129, 200] {
                let values = masked(w, u64::from(w), n);
                let mut generic = Vec::new();
                pack_words(&values, w, &mut generic);
                let mut fast = Vec::new();
                let written = pack_words_unrolled(&values, w, &mut fast);
                assert_eq!(fast, generic, "w = {w}, n = {n}");
                assert_eq!(Some(written), packed_size(n, w));
                let mut out = Vec::new();
                let consumed = unpack_words_unrolled(&generic, n, w, &mut out).expect("unpack");
                assert_eq!(consumed, written);
                assert_eq!(out, values, "w = {w}, n = {n}");
            }
        }
    }

    #[test]
    fn fused_for_matches_two_pass() {
        for w in [0u32, 1, 5, 13, 33, 63, 64] {
            for reference in [0i64, -17, 1 << 40, i64::MIN, i64::MAX] {
                let deltas = masked(w, 99, 150);
                let values: Vec<i64> = deltas
                    .iter()
                    .map(|&d| reference.wrapping_add(d as i64))
                    .collect();
                let mut fused = Vec::new();
                pack_words_for(&values, reference, w, &mut fused);
                let mut two_pass = Vec::new();
                pack_words(&deltas, w, &mut two_pass);
                assert_eq!(fused, two_pass, "w = {w}, ref = {reference}");
                let mut out = Vec::new();
                let consumed =
                    unpack_words_for(&fused, values.len(), w, reference, &mut out).expect("unpack");
                assert_eq!(consumed, fused.len());
                assert_eq!(out, values, "w = {w}, ref = {reference}");
            }
        }
    }

    #[test]
    fn fused_pack_masks_wide_values() {
        // The NewPFD slot stream stores only the low b bits of each delta.
        let values = [0i64, 5, 1 << 20, (1 << 20) | 3];
        let mut buf = Vec::new();
        pack_words_for(&values, 0, 4, &mut buf);
        let mut out = Vec::new();
        unpack_words(&buf, values.len(), 4, &mut out).expect("unpack");
        assert_eq!(out, vec![0, 5, 0, 3]);
    }

    #[test]
    fn truncated_lane_payload_fails() {
        let values = masked(13, 7, 130);
        let mut buf = Vec::new();
        pack_words_unrolled(&values, 13, &mut buf);
        let mut out = Vec::new();
        assert!(unpack_words_unrolled(&buf[..buf.len() - 1], 130, 13, &mut out).is_err());
        let mut out = Vec::new();
        assert!(unpack_words_for(&buf[..buf.len() - 1], 130, 13, 0, &mut out).is_err());
    }

    #[test]
    fn width_zero_and_empty() {
        let mut buf = Vec::new();
        assert_eq!(pack_words_unrolled(&[1, 2, 3], 0, &mut buf), 0);
        assert_eq!(pack_words_for(&[1, 2, 3], 1, 0, &mut buf), 0);
        assert!(buf.is_empty());
        let mut out = Vec::new();
        assert_eq!(unpack_words_unrolled(&[], 3, 0, &mut out), Ok(0));
        assert_eq!(out, vec![0, 0, 0]);
        let mut out = Vec::new();
        assert_eq!(unpack_words_for(&[], 3, 0, 42, &mut out), Ok(0));
        assert_eq!(out, vec![42, 42, 42]);
        let mut out = Vec::new();
        assert_eq!(unpack_words_unrolled(&[], 0, 17, &mut out), Ok(0));
        assert!(out.is_empty());
    }

    #[test]
    fn dispatch_tables_cover_all_widths() {
        // Every entry must roundtrip one lane at its width.
        for w in 0..=64u32 {
            let values_vec = masked(w, 3, LANE);
            let mut values = [0u64; LANE];
            values.copy_from_slice(&values_vec);
            let mut words = [0u64; LANE];
            PACK_LANE[w as usize](&values, &mut words);
            let mut out = [u64::MAX; LANE];
            UNPACK_LANE[w as usize](&words, &mut out);
            if w == 0 {
                assert_eq!(out, [0u64; LANE]);
            } else {
                assert_eq!(out, values, "w = {w}");
            }
        }
    }
}
