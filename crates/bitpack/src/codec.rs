//! The unified block-codec trait and the shared multi-block encode driver.
//!
//! Every integer block codec in the workspace — the PFOR family in
//! `crates/pfor`, BOS in `crates/bos` — implements [`BlockCodec`]. The
//! trait lives here, in the leaf crate both depend on, so there is exactly
//! one definition: `pfor` re-exports it as `pfor::Codec` and `encodings`
//! as `encodings::IntPacker` for backwards-compatible paths.
//!
//! A codec works on one self-describing block; [`encode_blocks_parallel`]
//! generalizes that to long series by segmenting into fixed-size blocks and
//! fanning encode out over std threads. Blocks are independent, so the
//! output is byte-identical to the sequential path and [`decode_blocks`]
//! (or any incremental reader) works on either.

use crate::error::DecodeResult;
use crate::zigzag::{read_varint, write_varint};

/// A self-describing integer block codec.
///
/// Implementations append length-prefixed blocks on encode and must fail
/// with `Err(`[`DecodeError`](crate::DecodeError)`)` — never panic — on
/// corrupt or truncated input.
pub trait BlockCodec {
    /// Method label used in experiment tables ("PFOR", "NEWPFOR", …).
    ///
    /// Labels must be unique across the workspace (bench tables key on
    /// them); the `codec-label-unique` xtask lint enforces this.
    fn name(&self) -> &'static str;

    /// Appends one encoded block to `out`.
    fn encode(&self, values: &[i64], out: &mut Vec<u8>);

    /// Decodes one block from `buf[*pos..]`, appending values to `out`.
    /// Fails with a [`DecodeError`](crate::DecodeError) on corrupt or
    /// truncated input.
    fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()>;
}

impl<C: BlockCodec + ?Sized> BlockCodec for &C {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
        (**self).encode(values, out)
    }
    fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
        (**self).decode(buf, pos, out)
    }
}

impl<C: BlockCodec + ?Sized> BlockCodec for Box<C> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
        (**self).encode(values, out)
    }
    fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
        (**self).decode(buf, pos, out)
    }
}

/// Encodes `values` as `varint n_blocks` followed by the blocks, encoding
/// block groups on up to `threads` worker threads and concatenating in
/// order. The output is byte-identical to a sequential loop over
/// `values.chunks(block_size)` (blocks are independent), so any
/// incremental reader — [`decode_blocks`], `bos::stream::StreamDecoder` —
/// works on either.
///
/// # Panics
/// If `block_size` or `threads` is zero.
pub fn encode_blocks_parallel<C: BlockCodec + Sync>(
    codec: &C,
    values: &[i64],
    block_size: usize,
    threads: usize,
    out: &mut Vec<u8>,
) {
    assert!(block_size >= 1, "block_size must be >= 1");
    assert!(threads >= 1, "threads must be >= 1");
    let n_blocks = values.len().div_ceil(block_size);
    write_varint(out, n_blocks as u64);
    if threads == 1 || n_blocks <= 1 {
        for block in values.chunks(block_size) {
            codec.encode(block, out);
        }
        return;
    }
    let blocks: Vec<&[i64]> = values.chunks(block_size).collect();
    let chunk = blocks.len().div_ceil(threads);
    let mut parts: Vec<Vec<u8>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .chunks(chunk)
            .map(|group| {
                scope.spawn(move || {
                    let mut buf = Vec::new();
                    for block in group {
                        codec.encode(block, &mut buf);
                    }
                    buf
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("worker panicked")); // lint:allow(no-panic): encode-side thread pool; re-raising a worker panic is the only sane option
        }
    });
    for part in parts {
        out.extend_from_slice(&part);
    }
}

/// Decodes an [`encode_blocks_parallel`] stream back into one vector:
/// `varint n_blocks` then that many `codec` blocks.
pub fn decode_blocks<C: BlockCodec>(codec: &C, buf: &[u8]) -> DecodeResult<Vec<i64>> {
    let mut pos = 0;
    let n_blocks = read_varint(buf, &mut pos)?;
    let mut out = Vec::new();
    for _ in 0..n_blocks {
        codec.decode(buf, &mut pos, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DecodeError;
    use crate::zigzag::{read_varint, zigzag_decode, zigzag_encode};

    /// Toy codec: `varint n` then `n` zigzag varints.
    struct Varints;

    impl BlockCodec for Varints {
        fn name(&self) -> &'static str {
            "VARINTS-TEST"
        }
        fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
            write_varint(out, values.len() as u64);
            for &v in values {
                write_varint(out, zigzag_encode(v));
            }
        }
        fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
            let n = read_varint(buf, pos)?;
            for _ in 0..n {
                out.push(zigzag_decode(read_varint(buf, pos)?));
            }
            Ok(())
        }
    }

    #[test]
    fn parallel_encode_blocks_byte_identical_and_decode_blocks_roundtrips() {
        let values: Vec<i64> = (0..10_000)
            .map(|i| if i % 83 == 0 { -(1 << 40) } else { i % 700 })
            .collect();
        let mut seq = Vec::new();
        encode_blocks_parallel(&Varints, &values, 512, 1, &mut seq);
        for threads in [2, 3, 8] {
            let mut par = Vec::new();
            encode_blocks_parallel(&Varints, &values, 512, threads, &mut par);
            assert_eq!(par, seq, "threads = {threads}");
        }
        assert_eq!(decode_blocks(&Varints, &seq), Ok(values));
    }

    #[test]
    fn empty_series() {
        let mut buf = Vec::new();
        encode_blocks_parallel(&Varints, &[], 1024, 4, &mut buf);
        assert_eq!(decode_blocks(&Varints, &buf), Ok(vec![]));
    }

    #[test]
    fn truncated_stream_is_err() {
        let values: Vec<i64> = (0..3000).collect();
        let mut buf = Vec::new();
        encode_blocks_parallel(&Varints, &values, 1000, 2, &mut buf);
        assert_eq!(
            decode_blocks(&Varints, &buf[..buf.len() / 2]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn blanket_impls_forward() {
        let boxed: Box<dyn BlockCodec> = Box::new(Varints);
        assert_eq!(boxed.name(), "VARINTS-TEST");
        let by_ref: &dyn BlockCodec = &Varints;
        let mut buf = Vec::new();
        by_ref.encode(&[1, -2, 3], &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        boxed.decode(&buf, &mut pos, &mut out).expect("intact");
        assert_eq!(out, [1, -2, 3]);
        assert_eq!(pos, buf.len());
    }
}
