//! The unified block-codec trait and the shared multi-block encode driver.
//!
//! Every integer block codec in the workspace — the PFOR family in
//! `crates/pfor`, BOS in `crates/bos` — implements [`BlockCodec`]. The
//! trait lives here, in the leaf crate both depend on, so there is exactly
//! one definition: `pfor` re-exports it as `pfor::Codec` and `encodings`
//! as `encodings::IntPacker` for backwards-compatible paths.
//!
//! A codec works on one self-describing block; [`encode_blocks_parallel`]
//! generalizes that to long series by segmenting into fixed-size blocks and
//! fanning encode out over std threads. Blocks are independent, so the
//! output is byte-identical to the sequential path and [`decode_blocks`]
//! (or any incremental reader) works on either.

use crate::error::{DecodeResult, EncodeError};
use crate::width::{range_u64, width};
use crate::zigzag::{read_varint, write_varint};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

// Parallel-driver metrics: per-worker block counts and busy time expose
// imbalance; join_wait_ns is how long the caller sat blocked collecting
// results; worker_panics counts contained codec panics (each one triggers
// a sequential retry of the batch). All no-ops unless the `obs` feature is
// on and the runtime switch is enabled.
static PAR_JOBS: obs::CounterHandle = obs::CounterHandle::new("driver.parallel.jobs");
static PAR_WORKERS: obs::CounterHandle = obs::CounterHandle::new("driver.parallel.workers");
static PAR_JOIN_WAIT_NS: obs::CounterHandle =
    obs::CounterHandle::new("driver.parallel.join_wait_ns");
static PAR_WORKER_PANICS: obs::CounterHandle =
    obs::CounterHandle::new("driver.parallel.worker_panics");
static PAR_WORKER_BLOCKS: obs::HistogramHandle =
    obs::HistogramHandle::new("driver.parallel.worker_blocks");
static PAR_WORKER_NS: obs::HistogramHandle = obs::HistogramHandle::new("driver.parallel.worker_ns");

/// Encode-side metric cells for one codec label, resolved once per batch
/// (the registry lookup does the `format!`; recording is lock-free).
#[derive(Clone, Copy)]
struct EncodeMeter {
    blocks: &'static obs::Counter,
    values: &'static obs::Counter,
    bytes: &'static obs::Counter,
    widths: &'static obs::Histogram,
}

impl EncodeMeter {
    /// `None` when instrumentation is off, so call sites skip both the
    /// name composition and the per-block accounting.
    fn new(label: &str) -> Option<Self> {
        obs::enabled().then(|| Self {
            blocks: obs::counter(&format!("codec.{label}.blocks_encoded")),
            values: obs::counter(&format!("codec.{label}.values_encoded")),
            bytes: obs::counter(&format!("codec.{label}.bytes_encoded")),
            widths: obs::histogram(&format!("codec.{label}.block_width")),
        })
    }

    fn record(&self, block: &[i64], bytes: usize) {
        self.blocks.inc();
        self.values.add(block.len() as u64);
        self.bytes.add(bytes as u64);
        let w = match (block.iter().min(), block.iter().max()) {
            (Some(&lo), Some(&hi)) => width(range_u64(lo, hi)),
            _ => 0,
        };
        self.widths.record(u64::from(w));
    }
}

/// Decode-side metric cells for one codec label.
#[derive(Clone, Copy)]
struct DecodeMeter {
    blocks: &'static obs::Counter,
    values: &'static obs::Counter,
    bytes: &'static obs::Counter,
}

impl DecodeMeter {
    fn new(label: &str) -> Option<Self> {
        obs::enabled().then(|| Self {
            blocks: obs::counter(&format!("codec.{label}.blocks_decoded")),
            values: obs::counter(&format!("codec.{label}.values_decoded")),
            bytes: obs::counter(&format!("codec.{label}.bytes_decoded")),
        })
    }
}

fn encode_one(
    session: &mut (dyn EncodeSession + '_),
    block: &[i64],
    out: &mut Vec<u8>,
    meter: Option<&EncodeMeter>,
) {
    let start = out.len();
    session.encode_block(block, out);
    if let Some(m) = meter {
        m.record(block, out.len().saturating_sub(start));
    }
}

fn decode_one<C: BlockCodec + ?Sized>(
    codec: &C,
    buf: &[u8],
    pos: &mut usize,
    out: &mut Vec<i64>,
    meter: Option<&DecodeMeter>,
) -> DecodeResult<()> {
    let values_before = out.len();
    let pos_before = *pos;
    codec.decode(buf, pos, out)?;
    if let Some(m) = meter {
        m.blocks.inc();
        m.values.add(out.len().saturating_sub(values_before) as u64);
        m.bytes.add(pos.saturating_sub(pos_before) as u64);
    }
    Ok(())
}

/// Encodes one block via `codec`, recording the per-label block/value/
/// byte counters and the block-width histogram when instrumentation is
/// enabled. Single-block counterpart of the accounting
/// [`encode_blocks_parallel`] does internally, for callers that frame
/// blocks themselves.
pub fn encode_block_observed<C: BlockCodec + ?Sized>(codec: &C, values: &[i64], out: &mut Vec<u8>) {
    let meter = EncodeMeter::new(codec.name());
    let mut session = codec.encode_session();
    encode_one(session.as_mut(), values, out, meter.as_ref());
}

/// Decodes one block via `codec`, recording the per-label block/value/
/// byte counters when instrumentation is enabled. Counterpart of
/// [`encode_block_observed`].
pub fn decode_block_observed<C: BlockCodec + ?Sized>(
    codec: &C,
    buf: &[u8],
    pos: &mut usize,
    out: &mut Vec<i64>,
) -> DecodeResult<()> {
    let meter = DecodeMeter::new(codec.name());
    decode_one(codec, buf, pos, out, meter.as_ref())
}

/// [`encode_one`] with the codec's panic contained: on panic the payload is
/// swallowed, `out` is rolled back to its entry length (the codec may have
/// pushed a partial block), and `Err(())` is returned.
fn encode_one_caught(
    session: &mut (dyn EncodeSession + '_),
    block: &[i64],
    out: &mut Vec<u8>,
    meter: Option<&EncodeMeter>,
) -> Result<(), ()> {
    let len_before = out.len();
    match catch_unwind(AssertUnwindSafe(|| encode_one(session, block, out, meter))) {
        Ok(()) => Ok(()),
        Err(_payload) => {
            out.truncate(len_before);
            Err(())
        }
    }
}

/// Sequential panic-contained block loop shared by the single-thread path
/// and the post-panic retry: the first block whose encode still panics
/// rolls `out` back to `restore` and surfaces as a typed error.
fn encode_blocks_caught<C: BlockCodec + ?Sized>(
    codec: &C,
    values: &[i64],
    block_size: usize,
    out: &mut Vec<u8>,
    meter: Option<&EncodeMeter>,
    restore: usize,
) -> Result<(), EncodeError> {
    let mut session = codec.encode_session();
    for (i, block) in values.chunks(block_size).enumerate() {
        if encode_one_caught(session.as_mut(), block, out, meter).is_err() {
            out.truncate(restore);
            return Err(EncodeError::WorkerPanicked { block: i });
        }
    }
    Ok(())
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A self-describing integer block codec.
///
/// Implementations append length-prefixed blocks on encode and must fail
/// with `Err(`[`DecodeError`](crate::DecodeError)`)` — never panic — on
/// corrupt or truncated input.
pub trait BlockCodec {
    /// Method label used in experiment tables ("PFOR", "NEWPFOR", …).
    ///
    /// Labels must be unique across the workspace (bench tables key on
    /// them); the `codec-label-unique` xtask lint enforces this.
    fn name(&self) -> &'static str;

    /// Appends one encoded block to `out`.
    fn encode(&self, values: &[i64], out: &mut Vec<u8>);

    /// Decodes one block from `buf[*pos..]`, appending values to `out`.
    /// Fails with a [`DecodeError`](crate::DecodeError) on corrupt or
    /// truncated input.
    fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()>;

    /// Creates per-thread encode state for a run of blocks.
    ///
    /// The multi-block drivers ([`encode_blocks_parallel`] and friends)
    /// create one session per worker and feed every block of that worker
    /// through it, so a codec with reusable working memory (e.g. a BOS
    /// solver scratch) can amortize its allocations across blocks. The
    /// default session is stateless and simply forwards to
    /// [`BlockCodec::encode`]; overriding must not change the bytes
    /// produced — sessions are a performance surface, not a format one.
    fn encode_session(&self) -> Box<dyn EncodeSession + '_> {
        Box::new(StatelessSession(self))
    }
}

/// Per-worker encode state produced by [`BlockCodec::encode_session`].
///
/// `encode_block` must append exactly the bytes [`BlockCodec::encode`]
/// would for the same block: state carried between blocks may only make
/// encoding faster, never different.
pub trait EncodeSession {
    /// Appends one encoded block to `out`.
    fn encode_block(&mut self, values: &[i64], out: &mut Vec<u8>);
}

/// Default [`EncodeSession`]: no reusable state, forwards each block to
/// [`BlockCodec::encode`].
struct StatelessSession<'a, C: ?Sized>(&'a C);

impl<C: BlockCodec + ?Sized> EncodeSession for StatelessSession<'_, C> {
    fn encode_block(&mut self, values: &[i64], out: &mut Vec<u8>) {
        self.0.encode(values, out)
    }
}

impl<C: BlockCodec + ?Sized> BlockCodec for &C {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
        (**self).encode(values, out)
    }
    fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
        (**self).decode(buf, pos, out)
    }
    fn encode_session(&self) -> Box<dyn EncodeSession + '_> {
        (**self).encode_session()
    }
}

impl<C: BlockCodec + ?Sized> BlockCodec for Box<C> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
        (**self).encode(values, out)
    }
    fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
        (**self).decode(buf, pos, out)
    }
    fn encode_session(&self) -> Box<dyn EncodeSession + '_> {
        (**self).encode_session()
    }
}

/// Encodes `values` as `varint n_blocks` followed by the blocks, encoding
/// block groups on up to `threads` worker threads and concatenating in
/// order. The output is byte-identical to a sequential loop over
/// `values.chunks(block_size)` (blocks are independent), so any
/// incremental reader — [`decode_blocks`], `bos::stream::StreamDecoder` —
/// works on either.
///
/// A codec panic is contained rather than propagated: each block encode
/// runs under `catch_unwind`, and if any worker trips, the whole batch is
/// retried sequentially with per-block containment (so a *transient* panic
/// still completes the encode). A block that panics deterministically
/// surfaces as [`EncodeError::WorkerPanicked`] carrying the first failing
/// block index, with `out` rolled back to exactly its entry state — the
/// caller's buffer is never left holding a half-written stream.
///
/// # Panics
/// If `block_size` or `threads` is zero.
pub fn encode_blocks_parallel<C: BlockCodec + Sync>(
    codec: &C,
    values: &[i64],
    block_size: usize,
    threads: usize,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    assert!(block_size >= 1, "block_size must be >= 1");
    assert!(threads >= 1, "threads must be >= 1");
    let n_blocks = values.len().div_ceil(block_size);
    let meter = EncodeMeter::new(codec.name());
    let restore = out.len();
    write_varint(out, n_blocks as u64);
    if threads == 1 || n_blocks <= 1 {
        return encode_blocks_caught(codec, values, block_size, out, meter.as_ref(), restore);
    }
    let blocks: Vec<&[i64]> = values.chunks(block_size).collect();
    let chunk = blocks.len().div_ceil(threads);
    let mut parts: Vec<Vec<u8>> = Vec::new();
    let mut panicked = false;
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .chunks(chunk)
            .map(|group| {
                scope.spawn(move || -> Result<Vec<u8>, ()> {
                    let started = meter.map(|_| Instant::now());
                    let mut session = codec.encode_session();
                    let mut buf = Vec::new();
                    for block in group {
                        encode_one_caught(session.as_mut(), block, &mut buf, meter.as_ref())?;
                    }
                    if let Some(t0) = started {
                        PAR_WORKER_BLOCKS.record(group.len() as u64);
                        PAR_WORKER_NS.record(elapsed_ns(t0));
                    }
                    Ok(buf)
                })
            })
            .collect();
        if meter.is_some() {
            PAR_JOBS.inc();
            PAR_WORKERS.add(handles.len() as u64);
            obs::trail::emit(obs::trail::Event::DriverDispatch {
                blocks: n_blocks as u64,
                workers: handles.len() as u64,
            });
        }
        let join_started = meter.map(|_| Instant::now());
        for h in handles {
            match h.join() {
                Ok(Ok(part)) => parts.push(part),
                // Worker reported a contained panic, or (second arm) the
                // panic escaped containment entirely — possible only for
                // panics raised between blocks, not by the codec itself.
                Ok(Err(())) | Err(_) => panicked = true,
            }
        }
        if let Some(t0) = join_started {
            PAR_JOIN_WAIT_NS.add(elapsed_ns(t0));
        }
        if meter.is_some() {
            obs::trail::emit(obs::trail::Event::DriverJoin {
                blocks: n_blocks as u64,
                panicked,
            });
        }
    });
    if !panicked {
        for part in parts {
            out.extend_from_slice(&part);
        }
        return Ok(());
    }
    // A worker panicked. Retry the batch sequentially with per-block
    // containment: transient panics complete on retry; a deterministic
    // panic identifies its block index and rolls `out` back.
    if meter.is_some() {
        PAR_WORKER_PANICS.inc();
        obs::trail::emit(obs::trail::Event::WorkerPanic {
            blocks: n_blocks as u64,
        });
    }
    out.truncate(restore);
    write_varint(out, n_blocks as u64);
    encode_blocks_caught(codec, values, block_size, out, meter.as_ref(), restore)
}

/// Decodes an [`encode_blocks_parallel`] stream back into one vector:
/// `varint n_blocks` then that many `codec` blocks.
pub fn decode_blocks<C: BlockCodec>(codec: &C, buf: &[u8]) -> DecodeResult<Vec<i64>> {
    let mut pos = 0;
    let n_blocks = read_varint(buf, &mut pos)?;
    let meter = DecodeMeter::new(codec.name());
    let mut out = Vec::new();
    for _ in 0..n_blocks {
        decode_one(codec, buf, &mut pos, &mut out, meter.as_ref())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DecodeError;
    use crate::zigzag::{read_varint, zigzag_decode, zigzag_encode};

    /// Toy codec: `varint n` then `n` zigzag varints.
    struct Varints;

    impl BlockCodec for Varints {
        fn name(&self) -> &'static str {
            "VARINTS-TEST"
        }
        fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
            write_varint(out, values.len() as u64);
            for &v in values {
                write_varint(out, zigzag_encode(v));
            }
        }
        fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
            let n = read_varint(buf, pos)?;
            for _ in 0..n {
                out.push(zigzag_decode(read_varint(buf, pos)?));
            }
            Ok(())
        }
    }

    #[test]
    fn parallel_encode_blocks_byte_identical_and_decode_blocks_roundtrips() {
        let values: Vec<i64> = (0..10_000)
            .map(|i| if i % 83 == 0 { -(1 << 40) } else { i % 700 })
            .collect();
        let mut seq = Vec::new();
        encode_blocks_parallel(&Varints, &values, 512, 1, &mut seq).expect("sequential encode");
        for threads in [2, 3, 8] {
            let mut par = Vec::new();
            encode_blocks_parallel(&Varints, &values, 512, threads, &mut par)
                .expect("parallel encode");
            assert_eq!(par, seq, "threads = {threads}");
        }
        assert_eq!(decode_blocks(&Varints, &seq), Ok(values));
    }

    #[test]
    fn empty_series() {
        let mut buf = Vec::new();
        encode_blocks_parallel(&Varints, &[], 1024, 4, &mut buf).expect("empty encode");
        assert_eq!(decode_blocks(&Varints, &buf), Ok(vec![]));
    }

    #[test]
    fn truncated_stream_is_err() {
        let values: Vec<i64> = (0..3000).collect();
        let mut buf = Vec::new();
        encode_blocks_parallel(&Varints, &values, 1000, 2, &mut buf).expect("encode");
        assert_eq!(
            decode_blocks(&Varints, &buf[..buf.len() / 2]),
            Err(DecodeError::Truncated)
        );
    }

    /// Same wire format as `Varints`, under its own label so the metric
    /// deltas below cannot race with the other tests in this binary
    /// (which drive "VARINTS-TEST" concurrently).
    struct VarintsObs;

    impl BlockCodec for VarintsObs {
        fn name(&self) -> &'static str {
            "VARINTS-OBS-TEST"
        }
        fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
            Varints.encode(values, out)
        }
        fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
            Varints.decode(buf, pos, out)
        }
    }

    #[test]
    fn encode_block_observed_decode_block_observed_roundtrip_and_count() {
        let values: Vec<i64> = (0..300).map(|i| i * 7 - 500).collect();
        let label = "VARINTS-OBS-TEST";
        let before = obs::snapshot();
        let mut buf = Vec::new();
        encode_block_observed(&VarintsObs, &values, &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        decode_block_observed(&VarintsObs, &buf, &mut pos, &mut out).expect("intact block");
        assert_eq!(out, values);
        if obs::enabled() {
            let after = obs::snapshot();
            let delta = |name: &str| {
                after.counter(&format!("codec.{label}.{name}"))
                    - before.counter(&format!("codec.{label}.{name}"))
            };
            assert_eq!(delta("blocks_encoded"), 1);
            assert_eq!(delta("blocks_decoded"), 1);
            assert_eq!(delta("values_encoded"), values.len() as u64);
            assert_eq!(delta("values_decoded"), values.len() as u64);
            assert_eq!(delta("bytes_encoded"), buf.len() as u64);
            assert_eq!(delta("bytes_decoded"), pos as u64);
            let widths = after
                .histogram(&format!("codec.{label}.block_width"))
                .expect("width histogram registered");
            assert!(widths.count >= 1);
        }
    }

    /// Deliberately-panicking mock codec: encodes like `Varints` but
    /// panics on any block containing the poison value.
    struct PanicOn(i64);

    impl BlockCodec for PanicOn {
        fn name(&self) -> &'static str {
            "PANIC-MOCK-TEST"
        }
        fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
            assert!(
                !values.contains(&self.0),
                "poison value reached the encoder"
            );
            Varints.encode(values, out)
        }
        fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
            Varints.decode(buf, pos, out)
        }
    }

    #[test]
    fn worker_panic_is_contained_as_typed_error_with_rollback() {
        let mut values: Vec<i64> = (0..4000).collect();
        values[2500] = -7777; // poisons block 2500 / 512 = 4
        let codec = PanicOn(-7777);
        for threads in [1, 2, 4, 16] {
            let mut out = vec![0xAB, 0xCD, 0xEF];
            let err = encode_blocks_parallel(&codec, &values, 512, threads, &mut out)
                .expect_err("poisoned block must fail");
            assert_eq!(
                err,
                crate::EncodeError::WorkerPanicked { block: 4 },
                "threads={threads}"
            );
            assert_eq!(
                out,
                vec![0xAB, 0xCD, 0xEF],
                "output must roll back (threads={threads})"
            );
        }
        // The same codec still encodes clean input, and the stream decodes.
        let clean: Vec<i64> = (0..4000).collect();
        let mut out = Vec::new();
        encode_blocks_parallel(&codec, &clean, 512, 4, &mut out).expect("clean input");
        assert_eq!(decode_blocks(&codec, &out), Ok(clean));
    }

    #[test]
    fn blanket_impls_forward() {
        let boxed: Box<dyn BlockCodec> = Box::new(Varints);
        assert_eq!(boxed.name(), "VARINTS-TEST");
        let by_ref: &dyn BlockCodec = &Varints;
        let mut buf = Vec::new();
        by_ref.encode(&[1, -2, 3], &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        boxed.decode(&buf, &mut pos, &mut out).expect("intact");
        assert_eq!(out, [1, -2, 3]);
        assert_eq!(pos, buf.len());
    }
}
