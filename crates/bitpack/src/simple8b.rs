//! Simple8b word-aligned integer codec (Anh & Moffat family).
//!
//! Packs a sequence of unsigned integers into 64-bit words: a 4-bit selector
//! chooses how many values share the word and at what width. Used here to
//! store the exception streams of NewPFOR / OptPFOR / FastPFOR, standing in
//! for Simple16 of the original C++ implementations (see DESIGN.md §2).
//!
//! Values must be `< 2^60`; larger values are reported as
//! [`Simple8bError::ValueTooLarge`]. The PFOR callers guarantee this by
//! construction (exception high-bits are at most `64 − b` wide with `b ≥ 4`).

use crate::error::{DecodeError, DecodeResult};
use crate::width::width;
use crate::zigzag::{read_len_bounded, write_varint};

/// `(values per word, bits per value)` for each 4-bit selector.
///
/// Selectors 0 and 1 are run encodings of zeros (240 and 120 zeros per
/// word); the rest trade count against width within a 60-bit payload.
pub const SELECTORS: [(usize, u32); 16] = [
    (240, 0),
    (120, 0),
    (60, 1),
    (30, 2),
    (20, 3),
    (15, 4),
    (12, 5),
    (10, 6),
    (8, 7),
    (7, 8),
    (6, 10),
    (5, 12),
    (4, 15),
    (3, 20),
    (2, 30),
    (1, 60),
];

/// Encode-side errors of the Simple8b codec. Decode failures use the
/// workspace-wide [`DecodeError`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Simple8bError {
    /// An input value does not fit in the 60-bit payload.
    ValueTooLarge(u64),
}

impl std::fmt::Display for Simple8bError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ValueTooLarge(v) => write!(f, "simple8b: value {v} exceeds 2^60 - 1"),
        }
    }
}

impl std::error::Error for Simple8bError {}

/// Encodes `values` as `varint n` + packed 64-bit little-endian words.
pub fn encode(values: &[u64], out: &mut Vec<u8>) -> Result<(), Simple8bError> {
    write_varint(out, values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        let (word, taken) = pack_one_word(values.get(i..).unwrap_or(&[]))?;
        i += taken;
        out.extend_from_slice(&word.to_le_bytes());
    }
    Ok(())
}

/// Packs the leading values of `rest` into one word using the densest
/// selector that fits. The number of values consumed matches the decoder's
/// rule `min(selector count, remaining)` exactly.
fn pack_one_word(rest: &[u64]) -> Result<(u64, usize), Simple8bError> {
    debug_assert!(!rest.is_empty());
    for (sel, &(count, bits)) in SELECTORS.iter().enumerate() {
        let take = count.min(rest.len());
        let head = rest.get(..take).unwrap_or(rest);
        let fits = if bits == 0 {
            head.iter().all(|&v| v == 0)
        } else {
            head.iter().all(|&v| width(v) <= bits)
        };
        if fits {
            let mut word = (sel as u64) << 60;
            if bits > 0 {
                for (j, &v) in head.iter().enumerate() {
                    word |= v << (j as u32 * bits);
                }
            }
            return Ok((word, take));
        }
    }
    let max = rest.iter().copied().max().unwrap_or(0);
    Err(Simple8bError::ValueTooLarge(max))
}

/// Decodes a stream produced by [`encode`] from `buf[*pos..]`, advancing
/// `pos`.
pub fn decode(buf: &[u8], pos: &mut usize, out: &mut Vec<u64>) -> DecodeResult<()> {
    let n = read_len_bounded(buf, pos, crate::MAX_BLOCK_VALUES)?;
    out.reserve(n);
    let mut remaining = n;
    while remaining > 0 {
        let word = match buf.get(*pos..*pos + 8).map(<[u8; 8]>::try_from) {
            Some(Ok(b)) => u64::from_le_bytes(b),
            _ => return Err(DecodeError::Truncated),
        };
        *pos += 8;
        let sel = (word >> 60) as usize;
        let (count, bits) = SELECTORS
            .get(sel)
            .copied()
            .ok_or(DecodeError::BadModeByte { mode: sel as u8 })?;
        let take = count.min(remaining);
        if bits == 0 {
            out.extend(std::iter::repeat_n(0, take));
        } else {
            let mask = (1u64 << bits) - 1;
            for j in 0..take {
                out.push((word >> (j as u32 * bits)) & mask);
            }
        }
        remaining -= take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64]) {
        let mut buf = Vec::new();
        encode(values, &mut buf).expect("encode");
        let mut pos = 0;
        let mut out = Vec::new();
        decode(&buf, &mut pos, &mut out).expect("decode");
        assert_eq!(out, values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn roundtrip_basic() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[1, 2, 3, 4, 5]);
        roundtrip(&[(1 << 60) - 1]);
        roundtrip(&vec![0; 1000]);
        roundtrip(&(0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_runs_are_dense() {
        let mut buf = Vec::new();
        encode(&vec![0u64; 240], &mut buf).unwrap();
        // varint(240) = 2 bytes + one 8-byte word.
        assert_eq!(buf.len(), 2 + 8);
    }

    #[test]
    fn mixed_widths() {
        let values: Vec<u64> = (0..256)
            .map(|i| if i % 17 == 0 { 1 << 40 } else { i })
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn value_too_large() {
        let mut buf = Vec::new();
        assert_eq!(
            encode(&[1u64 << 60], &mut buf),
            Err(Simple8bError::ValueTooLarge(1 << 60))
        );
    }

    #[test]
    fn truncated_is_corrupt() {
        let mut buf = Vec::new();
        encode(&[1, 2, 3], &mut buf).unwrap();
        let mut pos = 0;
        let mut out = Vec::new();
        assert_eq!(
            decode(&buf[..buf.len() - 1], &mut pos, &mut out),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn short_tails_of_every_length() {
        for n in 1..70 {
            let values: Vec<u64> = (0..n).map(|i| i * 3 + 1).collect();
            roundtrip(&values);
        }
    }

    #[test]
    fn max_width_values_throughout() {
        let values = vec![(1u64 << 60) - 1; 7];
        roundtrip(&values);
    }
}
