//! Bit-width arithmetic used throughout the cost model.
//!
//! The paper writes `⌈log(x + 1)⌉` (base 2) for the number of bits needed to
//! store any value in `0..=x`. Two variants are needed:
//!
//! * [`width`] — the plain `⌈log2(x+1)⌉`, which is 0 for `x = 0`. Used by the
//!   no-separation baseline (Definition 1), where a constant block stores no
//!   payload at all.
//! * [`width1`] — `max(1, ⌈log2(x+1)⌉)`, the width of a *separated part*.
//!   The special cases listed after Definition 5 ("if `max Xl = xmin` the
//!   first term is `2·nl`", "if `max Xc = min Xc` the third term is
//!   `n − nl − nu`") show that each non-empty part pays at least one bit per
//!   value, which is what the deployed encoder does.

/// `⌈log2(range + 1)⌉`: bits needed for any value in `0..=range`.
///
/// ```
/// assert_eq!(bitpack::width(0), 0);
/// assert_eq!(bitpack::width(1), 1);
/// assert_eq!(bitpack::width(8), 4);   // the example from the paper's intro
/// assert_eq!(bitpack::width(u64::MAX), 64);
/// ```
#[inline]
pub fn width(range: u64) -> u32 {
    64 - range.leading_zeros()
}

/// `max(1, ⌈log2(range + 1)⌉)`: width of a non-empty separated part.
#[inline]
pub fn width1(range: u64) -> u32 {
    width(range).max(1)
}

/// Bits needed to store the single value `v` with leading zeros removed
/// (`⌈log2(v + 1)⌉`). Alias of [`width`] with value semantics, matching the
/// paper's "the bit-width of 8 is 4".
#[inline]
pub fn bit_width(v: u64) -> u32 {
    width(v)
}

/// The unsigned distance `hi − lo` of two signed values, exact for the whole
/// `i64` domain (no overflow).
///
/// The cost model only ever consumes ranges, so blocks of `i64` values are
/// handled by mapping every pair to its `u64` distance.
#[inline]
pub fn range_u64(lo: i64, hi: i64) -> u64 {
    debug_assert!(lo <= hi);
    hi.wrapping_sub(lo) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_small_values() {
        assert_eq!(width(0), 0);
        assert_eq!(width(1), 1);
        assert_eq!(width(2), 2);
        assert_eq!(width(3), 2);
        assert_eq!(width(4), 3);
        assert_eq!(width(7), 3);
        assert_eq!(width(8), 4);
        assert_eq!(width(255), 8);
        assert_eq!(width(256), 9);
    }

    #[test]
    fn width_is_ceil_log2_plus_one_domain() {
        for x in 0..4096u64 {
            let w = width(x);
            if x == 0 {
                assert_eq!(w, 0);
            } else {
                assert!(u128::from(x) < (1u128 << w));
                assert!(x > (1u128 << (w - 1)) as u64 - 1);
            }
        }
    }

    #[test]
    fn width1_floors_at_one() {
        assert_eq!(width1(0), 1);
        assert_eq!(width1(1), 1);
        assert_eq!(width1(2), 2);
        assert_eq!(width1(u64::MAX), 64);
    }

    #[test]
    fn range_u64_extremes() {
        assert_eq!(range_u64(i64::MIN, i64::MAX), u64::MAX);
        assert_eq!(range_u64(-1, 1), 2);
        assert_eq!(range_u64(5, 5), 0);
        assert_eq!(range_u64(i64::MIN, 0), 1u64 << 63);
    }

    #[test]
    fn paper_intro_example() {
        // X = (3,2,4,5,3,2,0,8): plain bit-packing needs width(8) = 4 bits.
        assert_eq!(width(8), 4);
        // After removing 0 and 8 and subtracting min 2: range 3, width 2.
        assert_eq!(width(5 - 2), 2);
    }
}
