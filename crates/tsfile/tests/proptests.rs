//! Property-based tests for the TsFile-lite container.

use proptest::prelude::*;
use tsfile::{EncodingChoice, TsFileReader, TsFileWriter};

fn arbitrary_encoding() -> impl Strategy<Value = EncodingChoice> {
    use encodings::{OuterKind, PackerKind};
    (
        prop::sample::select(vec![OuterKind::Rle, OuterKind::Ts2Diff, OuterKind::Sprintz]),
        prop::sample::select(vec![
            PackerKind::Bp,
            PackerKind::Pfor,
            PackerKind::NewPfor,
            PackerKind::FastPfor,
            PackerKind::BosB,
            PackerKind::BosM,
        ]),
    )
        .prop_map(|(outer, packer)| EncodingChoice { outer, packer })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn multi_series_roundtrip(
        series in prop::collection::vec(
            (prop::collection::vec(any::<i64>(), 0..300), arbitrary_encoding()),
            0..6,
        )
    ) {
        let mut w = TsFileWriter::new();
        for (i, (values, enc)) in series.iter().enumerate() {
            w.add_int_series(&format!("s{i}"), values, *enc).unwrap();
        }
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        prop_assert_eq!(r.series().len(), series.len());
        for (i, (values, enc)) in series.iter().enumerate() {
            let name = format!("s{i}");
            prop_assert_eq!(&r.read_ints(&name).unwrap(), values);
            prop_assert_eq!(r.info(&name).unwrap().encoding, *enc);
        }
    }

    #[test]
    fn float_series_roundtrip(
        cents in prop::collection::vec(-1_000_000i64..1_000_000, 0..300)
    ) {
        // Fixed 2-decimal floats are exactly representable.
        let values: Vec<f64> = cents.iter().map(|&c| c as f64 / 100.0).collect();
        let mut w = TsFileWriter::new();
        w.add_float_series("f", &values, EncodingChoice::TS2DIFF_BOS).unwrap();
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        prop_assert_eq!(r.read_floats("f").unwrap(), values);
    }

    #[test]
    fn any_single_byte_corruption_is_caught_or_harmless(
        values in prop::collection::vec(0i64..100_000, 50..200),
        at_ratio in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut w = TsFileWriter::new();
        w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BOS).unwrap();
        let mut bytes = w.finish();
        let at = ((bytes.len() - 1) as f64 * at_ratio) as usize;
        bytes[at] ^= flip;
        // Must never panic; if it opens AND reads, the data must be intact
        // (i.e. the flipped byte was outside anything checksummed *and*
        // outside the payload — practically impossible, but allowed).
        if let Ok(r) = TsFileReader::open(&bytes) {
            if let Ok(out) = r.read_ints("s") {
                prop_assert_eq!(out, values);
            }
        }
    }

    #[test]
    fn garbage_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = TsFileReader::open(&bytes);
    }
}
