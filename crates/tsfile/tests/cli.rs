//! Integration tests driving the `boscli` binary end-to-end.

use std::path::PathBuf;
use std::process::Command;

fn boscli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_boscli"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boscli_test_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

#[test]
fn pack_info_unpack_roundtrip() {
    let dir = tmpdir("roundtrip");
    let csv = dir.join("temps.csv");
    let values: Vec<i64> = (0..5000)
        .map(|i| 200 + (i % 17) + if i % 97 == 0 { 9000 } else { 0 })
        .collect();
    datasets::csv::save_ints(&csv, &values).unwrap();

    let tsf = dir.join("out.tsf");
    let out = boscli()
        .args([
            "pack",
            tsf.to_str().unwrap(),
            &format!("temps={}", csv.display()),
        ])
        .output()
        .expect("run pack");
    assert!(
        out.status.success(),
        "pack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = boscli()
        .args(["info", tsf.to_str().unwrap()])
        .output()
        .expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("temps"), "info output: {text}");
    assert!(text.contains("5000"), "info output: {text}");

    let back = dir.join("back.csv");
    let out = boscli()
        .args([
            "unpack",
            tsf.to_str().unwrap(),
            "temps",
            back.to_str().unwrap(),
        ])
        .output()
        .expect("run unpack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(datasets::csv::load_ints(&back).unwrap(), values);
}

#[test]
fn bench_prints_method_table() {
    let dir = tmpdir("bench");
    let csv = dir.join("series.csv");
    let values: Vec<i64> = (0..3000).map(|i| i % 250).collect();
    datasets::csv::save_ints(&csv, &values).unwrap();
    let out = boscli()
        .args(["bench", csv.to_str().unwrap()])
        .output()
        .expect("run bench");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TS2DIFF+BOS-B"), "bench output: {text}");
    assert!(text.contains("RLE+BP"), "bench output: {text}");
}

#[test]
fn float_csv_is_packed_losslessly() {
    let dir = tmpdir("floats");
    let csv = dir.join("load.csv");
    let values: Vec<f64> = (0..2000).map(|i| (i % 331) as f64 / 10.0).collect();
    datasets::csv::save_floats(&csv, &values).unwrap();
    let tsf = dir.join("f.tsf");
    let out = boscli()
        .args([
            "pack",
            tsf.to_str().unwrap(),
            &format!("load={}", csv.display()),
        ])
        .output()
        .expect("run pack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let data = std::fs::read(&tsf).unwrap();
    let reader = tsfile::TsFileReader::open(&data).unwrap();
    assert_eq!(reader.read_floats("load").unwrap(), values);
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!boscli().output().unwrap().status.success());
    assert!(!boscli()
        .args(["info", "/nonexistent/file.tsf"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!boscli().args(["unpack"]).output().unwrap().status.success());
}
