//! TsFile-lite — a small columnar time-series container.
//!
//! The paper deploys BOS inside Apache TsFile (§VII). This crate provides
//! the equivalent substrate in miniature: a single-file columnar format
//! holding many named series, each compressed with a per-series encoding
//! choice (any outer × operator pipeline, BOS included), with CRC-32
//! integrity on every chunk and a footer index for random access by name.
//!
//! ```text
//! file := magic
//!         chunk*                      one per series, written in order
//!         footer                      name → (offset, count, …) index
//!         u32 footer_crc · u64 footer_offset · magic
//!
//! chunk := u8 0x01 · varint name_len · name
//!          u8 value_type (0 int | 1 float) · [u8 decimals]
//!          u8 outer · u8 packer       encoding ids
//!          varint count · varint payload_len · payload · u32 payload_crc
//! ```
//!
//! ```
//! use tsfile::{EncodingChoice, TsFileReader, TsFileWriter};
//!
//! let mut w = TsFileWriter::new();
//! w.add_int_series("s1.temperature", &[20, 21, 21, 35, 20], EncodingChoice::TS2DIFF_BOS)
//!     .unwrap();
//! let bytes = w.finish();
//! let r = TsFileReader::open(&bytes).unwrap();
//! assert_eq!(r.read_ints("s1.temperature").unwrap(), vec![20, 21, 21, 35, 20]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;

use bitpack::error::DecodeError;
use bitpack::zigzag::{read_varint, write_varint};
use crc::crc32;

// Container-level metrics: chunk traffic in both directions plus CRC
// verification outcomes (footer and chunk checks both count — a mismatch
// here is the storage stack's first line of corruption evidence).
static CHUNKS_WRITTEN: obs::CounterHandle = obs::CounterHandle::new("tsfile.chunks_written");
static CHUNK_BYTES_WRITTEN: obs::CounterHandle =
    obs::CounterHandle::new("tsfile.chunk_bytes_written");
static CHUNKS_READ: obs::CounterHandle = obs::CounterHandle::new("tsfile.chunks_read");
static CRC_VERIFIED: obs::CounterHandle = obs::CounterHandle::new("tsfile.crc_verified");
static CRC_MISMATCH: obs::CounterHandle = obs::CounterHandle::new("tsfile.crc_mismatch");
use encodings::{OuterKind, PackerKind, Pipeline};
use std::collections::BTreeMap;
use std::fmt;

/// File magic, 8 bytes (version byte last).
pub const MAGIC: &[u8; 8] = b"BOSTSF\x00\x01";

/// Errors returned by the reader/writer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsFileError {
    /// The file does not start/end with the magic or is structurally
    /// invalid.
    Corrupt(&'static str),
    /// A chunk or footer checksum mismatched.
    ChecksumMismatch {
        /// Which series (empty for the footer).
        series: String,
    },
    /// The requested series does not exist.
    NoSuchSeries(String),
    /// The series exists but holds the other value type.
    WrongType(String),
    /// A series with this name was already added.
    DuplicateSeries(String),
    /// The float series has no exact `×10^p` representation.
    UnrepresentableFloats(String),
    /// A header field or chunk payload failed to decode; carries the
    /// typed decoder error from the codec stack unchanged.
    Decode(DecodeError),
}

impl From<DecodeError> for TsFileError {
    fn from(e: DecodeError) -> Self {
        TsFileError::Decode(e)
    }
}

impl fmt::Display for TsFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Corrupt(what) => write!(f, "corrupt tsfile: {what}"),
            Self::ChecksumMismatch { series } if series.is_empty() => {
                write!(f, "footer checksum mismatch")
            }
            Self::ChecksumMismatch { series } => {
                write!(f, "checksum mismatch in series {series:?}")
            }
            Self::NoSuchSeries(name) => write!(f, "no such series: {name:?}"),
            Self::WrongType(name) => write!(f, "series {name:?} has the other value type"),
            Self::DuplicateSeries(name) => write!(f, "series {name:?} already added"),
            Self::UnrepresentableFloats(name) => write!(
                f,
                "series {name:?} has no exact decimal scaling; store pre-scaled integers instead"
            ),
            Self::Decode(e) => write!(f, "decode failed: {e}"),
        }
    }
}

impl std::error::Error for TsFileError {}

/// Per-series encoding choice: an outer transform plus an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingChoice {
    /// The outer encoding.
    pub outer: OuterKind,
    /// The inner bit-packing operator.
    pub packer: PackerKind,
}

impl EncodingChoice {
    /// The production default of the paper's deployment: TS2DIFF + BOS-B.
    pub const TS2DIFF_BOS: EncodingChoice = EncodingChoice {
        outer: OuterKind::Ts2Diff,
        packer: PackerKind::BosB,
    };

    /// The pre-BOS default: TS2DIFF + plain bit-packing.
    pub const TS2DIFF_BP: EncodingChoice = EncodingChoice {
        outer: OuterKind::Ts2Diff,
        packer: PackerKind::Bp,
    };

    /// Tries a small portfolio (TS2DIFF/RLE/SPRINTZ × BOS-B) and keeps
    /// whichever encodes `values` smallest — a pragmatic "auto" mode.
    pub fn auto_for(values: &[i64]) -> EncodingChoice {
        let default = EncodingChoice { outer: OuterKind::Ts2Diff, packer: PackerKind::BosB };
        let candidates = [
            default,
            EncodingChoice { outer: OuterKind::Rle, packer: PackerKind::BosB },
            EncodingChoice { outer: OuterKind::Sprintz, packer: PackerKind::BosB },
        ];
        let mut best = default;
        let mut best_size = usize::MAX;
        let mut buf = Vec::new();
        for c in candidates {
            buf.clear();
            c.pipeline().encode(values, &mut buf);
            if buf.len() < best_size {
                best_size = buf.len();
                best = c;
            }
        }
        best
    }

    fn pipeline(&self) -> Pipeline {
        Pipeline::new(self.outer, self.packer)
    }

    fn outer_id(&self) -> u8 {
        match self.outer {
            OuterKind::Rle => 0,
            OuterKind::Ts2Diff => 1,
            OuterKind::Sprintz => 2,
        }
    }

    fn packer_id(&self) -> u8 {
        match self.packer {
            PackerKind::Bp => 0,
            PackerKind::Pfor => 1,
            PackerKind::NewPfor => 2,
            PackerKind::OptPfor => 3,
            PackerKind::FastPfor => 4,
            PackerKind::BosV => 5,
            PackerKind::BosB => 6,
            PackerKind::BosM => 7,
            // Appended in PR 3: ids 0-7 are persisted in existing files
            // and must not be renumbered.
            PackerKind::SimplePfor => 8,
        }
    }

    fn from_ids(outer: u8, packer: u8) -> Option<EncodingChoice> {
        let outer = match outer {
            0 => OuterKind::Rle,
            1 => OuterKind::Ts2Diff,
            2 => OuterKind::Sprintz,
            _ => return None,
        };
        let packer = match packer {
            0 => PackerKind::Bp,
            1 => PackerKind::Pfor,
            2 => PackerKind::NewPfor,
            3 => PackerKind::OptPfor,
            4 => PackerKind::FastPfor,
            5 => PackerKind::BosV,
            6 => PackerKind::BosB,
            7 => PackerKind::BosM,
            8 => PackerKind::SimplePfor,
            _ => return None,
        };
        Some(EncodingChoice { outer, packer })
    }

    /// Human-readable label, e.g. "TS2DIFF+BOS-B".
    pub fn label(&self) -> String {
        self.pipeline().label()
    }
}

const TYPE_INT: u8 = 0;
const TYPE_FLOAT: u8 = 1;
const CHUNK_TAG: u8 = 0x01;

/// Builds a TsFile in memory.
#[derive(Default)]
pub struct TsFileWriter {
    body: Vec<u8>,
    index: Vec<IndexEntry>,
    names: BTreeMap<String, ()>,
}

struct IndexEntry {
    name: String,
    offset: u64,
    count: u64,
    is_float: bool,
    encoding: EncodingChoice,
}

impl TsFileWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self {
            body: MAGIC.to_vec(),
            index: Vec::new(),
            names: BTreeMap::new(),
        }
    }

    fn check_name(&mut self, name: &str) -> Result<(), TsFileError> {
        if self.names.insert(name.to_string(), ()).is_some() {
            return Err(TsFileError::DuplicateSeries(name.to_string()));
        }
        Ok(())
    }

    fn add_chunk(
        &mut self,
        name: &str,
        value_type: u8,
        decimals: Option<u8>,
        encoding: EncodingChoice,
        count: usize,
        payload: &[u8],
    ) {
        let offset = self.body.len() as u64;
        self.body.push(CHUNK_TAG);
        write_varint(&mut self.body, name.len() as u64);
        self.body.extend_from_slice(name.as_bytes());
        self.body.push(value_type);
        if let Some(d) = decimals {
            self.body.push(d);
        }
        self.body.push(encoding.outer_id());
        self.body.push(encoding.packer_id());
        write_varint(&mut self.body, count as u64);
        write_varint(&mut self.body, payload.len() as u64);
        self.body.extend_from_slice(payload);
        self.body.extend_from_slice(&crc32(payload).to_le_bytes());
        if obs::enabled() {
            CHUNKS_WRITTEN.inc();
            CHUNK_BYTES_WRITTEN.add(payload.len() as u64);
        }
        self.index.push(IndexEntry {
            name: name.to_string(),
            offset,
            count: count as u64,
            is_float: value_type == TYPE_FLOAT,
            encoding,
        });
    }

    /// Adds an integer series compressed with `encoding`.
    pub fn add_int_series(
        &mut self,
        name: &str,
        values: &[i64],
        encoding: EncodingChoice,
    ) -> Result<(), TsFileError> {
        self.check_name(name)?;
        let mut payload = Vec::new();
        encoding.pipeline().encode(values, &mut payload);
        self.add_chunk(name, TYPE_INT, None, encoding, values.len(), &payload);
        Ok(())
    }

    /// Adds a float series (must have an exact `×10^p` representation —
    /// fixed-decimal telemetry does; free-form doubles may not).
    pub fn add_float_series(
        &mut self,
        name: &str,
        values: &[f64],
        encoding: EncodingChoice,
    ) -> Result<(), TsFileError> {
        self.check_name(name)?;
        let p = encodings::floatint::infer_precision(values)
            .ok_or_else(|| TsFileError::UnrepresentableFloats(name.to_string()))?;
        let ints = encodings::floatint::floats_to_ints(values, p)
            .ok_or_else(|| TsFileError::UnrepresentableFloats(name.to_string()))?;
        let mut payload = Vec::new();
        encoding.pipeline().encode(&ints, &mut payload);
        self.add_chunk(
            name,
            TYPE_FLOAT,
            Some(p as u8),
            encoding,
            values.len(),
            &payload,
        );
        Ok(())
    }

    /// Adds a timestamped integer series: the timestamp column is stored
    /// as its own chunk (`<name>/time`) with second-order differencing —
    /// regular timestamps collapse to almost nothing — and values as
    /// `<name>/value` with `encoding`. This mirrors how Apache TsFile
    /// stores (time, value) pages.
    pub fn add_timed_series(
        &mut self,
        name: &str,
        points: &[(i64, i64)],
        encoding: EncodingChoice,
    ) -> Result<(), TsFileError> {
        let times: Vec<i64> = points.iter().map(|&(t, _)| t).collect();
        let values: Vec<i64> = points.iter().map(|&(_, v)| v).collect();
        // Timestamps: second-order TS2DIFF + BOS-B, independent of the
        // value encoding choice.
        let time_name = format!("{name}/time");
        let value_name = format!("{name}/value");
        self.check_name(&time_name)?;
        self.check_name(&value_name)?;
        let mut payload = Vec::new();
        encodings::ts2diff::Ts2DiffEncoding::second_order(
            bos::BosCodec::new(bos::SolverKind::BitWidth),
        )
        .encode(&times, &mut payload);
        // Timestamp chunks reuse the TS2DIFF+BOS-B encoding id; the order
        // byte inside the payload makes the stream self-describing.
        self.add_chunk(
            &time_name,
            TYPE_INT,
            None,
            EncodingChoice::TS2DIFF_BOS,
            times.len(),
            &payload,
        );
        let mut vpayload = Vec::new();
        encoding.pipeline().encode(&values, &mut vpayload);
        self.add_chunk(&value_name, TYPE_INT, None, encoding, values.len(), &vpayload);
        Ok(())
    }

    /// Finalizes the file: footer index, footer CRC, trailer.
    pub fn finish(mut self) -> Vec<u8> {
        let _span = obs::span("tsfile.write_stream");
        let footer_offset = self.body.len() as u64;
        let mut footer = Vec::new();
        write_varint(&mut footer, self.index.len() as u64);
        for e in &self.index {
            write_varint(&mut footer, e.name.len() as u64);
            footer.extend_from_slice(e.name.as_bytes());
            write_varint(&mut footer, e.offset);
            write_varint(&mut footer, e.count);
            footer.push(e.is_float as u8);
            footer.push(e.encoding.outer_id());
            footer.push(e.encoding.packer_id());
        }
        let footer_crc = crc32(&footer);
        self.body.extend_from_slice(&footer);
        self.body.extend_from_slice(&footer_crc.to_le_bytes());
        self.body.extend_from_slice(&footer_offset.to_le_bytes());
        self.body.extend_from_slice(MAGIC);
        self.body
    }
}

/// Metadata of one series, from the footer index.
#[derive(Debug, Clone)]
pub struct SeriesInfo {
    /// Series name.
    pub name: String,
    /// Number of values.
    pub count: u64,
    /// Whether the series holds floats.
    pub is_float: bool,
    /// The encoding it was written with.
    pub encoding: EncodingChoice,
    /// Byte offset of its chunk.
    pub offset: u64,
}

/// Reads a TsFile from a byte buffer.
pub struct TsFileReader<'a> {
    data: &'a [u8],
    series: Vec<SeriesInfo>,
}

impl<'a> TsFileReader<'a> {
    /// Parses the footer index and validates the envelope.
    pub fn open(data: &'a [u8]) -> Result<Self, TsFileError> {
        let min = MAGIC.len() * 2 + 12;
        if data.len() < min
            || data.get(..8).is_none_or(|m| m != MAGIC)
            || data.get(data.len() - 8..).is_none_or(|m| m != MAGIC)
        {
            return Err(TsFileError::Corrupt("bad magic"));
        }
        let tail = data.len() - 8;
        let off_bytes = data
            .get(tail - 8..tail)
            .ok_or(TsFileError::Corrupt("bad footer offset"))?;
        let footer_offset = match <[u8; 8]>::try_from(off_bytes) {
            Ok(b) => u64::from_le_bytes(b) as usize,
            Err(_) => return Err(TsFileError::Corrupt("bad footer offset")),
        };
        if footer_offset < 8 || footer_offset >= tail.saturating_sub(12) {
            return Err(TsFileError::Corrupt("bad footer offset"));
        }
        let footer = data
            .get(footer_offset..tail - 12)
            .ok_or(TsFileError::Corrupt("bad footer offset"))?;
        let crc_bytes = data
            .get(tail - 12..tail - 8)
            .ok_or(TsFileError::Corrupt("bad footer offset"))?;
        let stored_crc = match <[u8; 4]>::try_from(crc_bytes) {
            Ok(b) => u32::from_le_bytes(b),
            Err(_) => return Err(TsFileError::Corrupt("bad footer offset")),
        };
        if crc32(footer) != stored_crc {
            if obs::enabled() {
                CRC_MISMATCH.inc();
            }
            return Err(TsFileError::ChecksumMismatch {
                series: String::new(),
            });
        }
        if obs::enabled() {
            CRC_VERIFIED.inc();
        }
        let mut pos = 0usize;
        let count = read_varint(footer, &mut pos)? as usize;
        if count > 1 << 20 {
            return Err(TsFileError::Corrupt("footer count"));
        }
        let mut series = Vec::with_capacity(count);
        for _ in 0..count {
            let nlen = read_varint(footer, &mut pos)? as usize;
            let name_bytes = footer
                .get(pos..pos + nlen)
                .ok_or(TsFileError::Corrupt("name bytes"))?;
            pos += nlen;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| TsFileError::Corrupt("name utf8"))?
                .to_string();
            let offset = read_varint(footer, &mut pos)?;
            let vcount = read_varint(footer, &mut pos)?;
            let (is_float, outer, packer) = match footer.get(pos..pos + 3) {
                Some([a, b, c]) => (*a, *b, *c),
                _ => return Err(TsFileError::Corrupt("flags")),
            };
            pos += 3;
            let encoding = EncodingChoice::from_ids(outer, packer)
                .ok_or(TsFileError::Corrupt("encoding id"))?;
            series.push(SeriesInfo {
                name,
                count: vcount,
                is_float: is_float == 1,
                encoding,
                offset,
            });
        }
        Ok(Self { data, series })
    }

    /// Index of all series in write order.
    pub fn series(&self) -> &[SeriesInfo] {
        &self.series
    }

    /// Looks up a series by name.
    pub fn info(&self, name: &str) -> Result<&SeriesInfo, TsFileError> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| TsFileError::NoSuchSeries(name.to_string()))
    }

    /// Parses a chunk at `info.offset`, verifying its CRC. Returns the
    /// decimals (floats only) and decoded integers.
    fn read_chunk(&self, info: &SeriesInfo) -> Result<(Option<u8>, Vec<i64>), TsFileError> {
        let data = self.data;
        let mut pos = info.offset as usize;
        let corrupt = TsFileError::Corrupt("chunk header");
        if *data.get(pos).ok_or(corrupt.clone())? != CHUNK_TAG {
            return Err(corrupt);
        }
        pos += 1;
        let nlen = read_varint(data, &mut pos)? as usize;
        let name = data.get(pos..pos + nlen).ok_or(corrupt.clone())?;
        pos += nlen;
        if name != info.name.as_bytes() {
            return Err(TsFileError::Corrupt("index/chunk name mismatch"));
        }
        let vtype = *data.get(pos).ok_or(corrupt.clone())?;
        pos += 1;
        let decimals = if vtype == TYPE_FLOAT {
            let d = *data.get(pos).ok_or(corrupt.clone())?;
            pos += 1;
            Some(d)
        } else {
            None
        };
        let outer = *data.get(pos).ok_or(corrupt.clone())?;
        let packer = *data.get(pos + 1).ok_or(corrupt.clone())?;
        pos += 2;
        let encoding =
            EncodingChoice::from_ids(outer, packer).ok_or(TsFileError::Corrupt("encoding id"))?;
        let count = read_varint(data, &mut pos)? as usize;
        if count > bitpack::MAX_BLOCK_VALUES {
            return Err(TsFileError::Decode(DecodeError::CountOverflow {
                claimed: count as u64,
            }));
        }
        let plen = read_varint(data, &mut pos)? as usize;
        let payload = data.get(pos..pos + plen).ok_or(corrupt.clone())?;
        pos += plen;
        let stored = data.get(pos..pos + 4).ok_or(corrupt.clone())?;
        let stored_crc = match <[u8; 4]>::try_from(stored) {
            Ok(b) => u32::from_le_bytes(b),
            Err(_) => return Err(corrupt),
        };
        if crc32(payload) != stored_crc {
            if obs::enabled() {
                CRC_MISMATCH.inc();
            }
            return Err(TsFileError::ChecksumMismatch {
                series: info.name.clone(),
            });
        }
        if obs::enabled() {
            CRC_VERIFIED.inc();
            CHUNKS_READ.inc();
        }
        let mut out = Vec::with_capacity(count);
        let mut ppos = 0;
        encoding.pipeline().decode(payload, &mut ppos, &mut out)?;
        if out.len() != count {
            return Err(TsFileError::Corrupt("value count mismatch"));
        }
        Ok((decimals, out))
    }

    /// Reads an integer series by name.
    pub fn read_ints(&self, name: &str) -> Result<Vec<i64>, TsFileError> {
        let info = self.info(name)?.clone();
        if info.is_float {
            return Err(TsFileError::WrongType(name.to_string()));
        }
        Ok(self.read_chunk(&info)?.1)
    }

    /// Reads a timestamped series written by
    /// [`TsFileWriter::add_timed_series`].
    pub fn read_timed_series(&self, name: &str) -> Result<Vec<(i64, i64)>, TsFileError> {
        let time_name = format!("{name}/time");
        let value_name = format!("{name}/value");
        let tinfo = self.info(&time_name)?.clone();
        let (_, payload_times) = self.read_chunk_raw(&tinfo)?;
        let values = self.read_ints(&value_name)?;
        if payload_times.len() != values.len() {
            return Err(TsFileError::Corrupt("time/value length mismatch"));
        }
        Ok(payload_times.into_iter().zip(values).collect())
    }

    /// Reads a chunk as raw integers, decoding timestamp chunks with the
    /// self-describing TS2DIFF path.
    fn read_chunk_raw(&self, info: &SeriesInfo) -> Result<(Option<u8>, Vec<i64>), TsFileError> {
        self.read_chunk(info)
    }

    /// Reads a float series by name.
    pub fn read_floats(&self, name: &str) -> Result<Vec<f64>, TsFileError> {
        let info = self.info(name)?.clone();
        if !info.is_float {
            return Err(TsFileError::WrongType(name.to_string()));
        }
        let (decimals, ints) = self.read_chunk(&info)?;
        let p = decimals.ok_or(TsFileError::Corrupt("missing decimals"))? as u32;
        Ok(encodings::floatint::ints_to_floats(&ints, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_multiple_series() {
        let mut w = TsFileWriter::new();
        let temps: Vec<i64> = (0..5000).map(|i| 200 + (i % 15)).collect();
        let loads: Vec<f64> = (0..3000).map(|i| (i % 97) as f64 / 10.0).collect();
        w.add_int_series("plant1.temp", &temps, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        w.add_float_series("plant1.load", &loads, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        w.add_int_series("plant1.rpm", &[0; 100], EncodingChoice::TS2DIFF_BP)
            .unwrap();
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert_eq!(r.series().len(), 3);
        assert_eq!(r.read_ints("plant1.temp").unwrap(), temps);
        assert_eq!(r.read_floats("plant1.load").unwrap(), loads);
        assert_eq!(r.read_ints("plant1.rpm").unwrap(), vec![0; 100]);
    }

    #[test]
    fn error_paths() {
        let mut w = TsFileWriter::new();
        w.add_int_series("a", &[1, 2, 3], EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        assert_eq!(
            w.add_int_series("a", &[4], EncodingChoice::TS2DIFF_BOS),
            Err(TsFileError::DuplicateSeries("a".into()))
        );
        assert_eq!(
            w.add_float_series("pi", &[std::f64::consts::PI], EncodingChoice::TS2DIFF_BOS),
            Err(TsFileError::UnrepresentableFloats("pi".into()))
        );
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert!(matches!(
            r.read_ints("missing"),
            Err(TsFileError::NoSuchSeries(_))
        ));
        assert!(matches!(r.read_floats("a"), Err(TsFileError::WrongType(_))));
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut w = TsFileWriter::new();
        // Incompressible-ish values so the payload is comfortably larger
        // than the headers and the flipped byte lands inside it.
        let values: Vec<i64> = (0..2000).map(|i| (i * i * 37) % 10_007).collect();
        w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        let mut bytes = w.finish();
        assert!(bytes.len() > 500);
        bytes[200] ^= 0x40; // inside the chunk payload
        let r = TsFileReader::open(&bytes).unwrap();
        assert!(matches!(
            r.read_ints("s"),
            Err(TsFileError::ChecksumMismatch { .. }) | Err(TsFileError::Corrupt(_))
        ));
    }

    #[test]
    fn footer_corruption_is_detected() {
        let mut w = TsFileWriter::new();
        w.add_int_series("s", &[1, 2, 3], EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        let mut bytes = w.finish();
        let footer_byte = bytes.len() - 20; // inside the footer
        bytes[footer_byte] ^= 0xFF;
        assert!(TsFileReader::open(&bytes).is_err());
    }

    #[test]
    fn truncated_and_garbage_files() {
        assert!(TsFileReader::open(b"").is_err());
        assert!(TsFileReader::open(b"not a tsfile at all").is_err());
        let mut w = TsFileWriter::new();
        w.add_int_series("s", &[1], EncodingChoice::TS2DIFF_BP).unwrap();
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let _ = TsFileReader::open(&bytes[..cut]); // must not panic
        }
    }

    #[test]
    fn timed_series_roundtrip() {
        // Regular 1 Hz timestamps with small jitter + a value channel.
        let points: Vec<(i64, i64)> = (0..20_000i64)
            .map(|i| (1_700_000_000_000 + i * 1000 + (i % 3), 500 + (i % 12)))
            .collect();
        let mut w = TsFileWriter::new();
        w.add_timed_series("engine.rpm", &points, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert_eq!(r.read_timed_series("engine.rpm").unwrap(), points);
        // Both columns appear in the index.
        assert!(r.info("engine.rpm/time").is_ok());
        assert!(r.info("engine.rpm/value").is_ok());
        // Second-order differencing makes the timestamp column tiny:
        // well under 1 bit per point for near-regular stamps.
        let tinfo = r.info("engine.rpm/time").unwrap();
        let vinfo = r.info("engine.rpm/value").unwrap();
        let time_bytes = (vinfo.offset - tinfo.offset) as usize;
        assert!(time_bytes < points.len() / 2, "time column {time_bytes} bytes");
    }

    #[test]
    fn timed_series_name_collisions() {
        let mut w = TsFileWriter::new();
        w.add_int_series("a/time", &[1], EncodingChoice::TS2DIFF_BP).unwrap();
        assert!(matches!(
            w.add_timed_series("a", &[(1, 2)], EncodingChoice::TS2DIFF_BOS),
            Err(TsFileError::DuplicateSeries(_))
        ));
    }

    #[test]
    fn auto_encoding_picks_sensibly() {
        // Highly repetitive data → RLE should win.
        let runs: Vec<i64> = (0..4000).map(|i| (i / 500) % 3).collect();
        let choice = EncodingChoice::auto_for(&runs);
        assert_eq!(choice.outer, OuterKind::Rle, "got {}", choice.label());
        // Smooth trending data → a delta encoding should win.
        let smooth: Vec<i64> = (0..4000).map(|i| i * 7 + (i % 3)).collect();
        let choice = EncodingChoice::auto_for(&smooth);
        assert_ne!(choice.outer, OuterKind::Rle, "got {}", choice.label());
    }

    #[test]
    fn bos_shrinks_the_file() {
        let mut values: Vec<i64> = (0..20_000).map(|i| 1000 + (i % 12)).collect();
        for i in (0..values.len()).step_by(300) {
            values[i] = 1 << 35;
        }
        let size_with = {
            let mut w = TsFileWriter::new();
            w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BOS).unwrap();
            w.finish().len()
        };
        let size_without = {
            let mut w = TsFileWriter::new();
            w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BP).unwrap();
            w.finish().len()
        };
        assert!(size_with * 2 < size_without, "{size_with} vs {size_without}");
    }

    #[test]
    fn empty_file_roundtrips() {
        let bytes = TsFileWriter::new().finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert!(r.series().is_empty());
    }
}
