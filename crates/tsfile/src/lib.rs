//! TsFile-lite — a small columnar time-series container.
//!
//! The paper deploys BOS inside Apache TsFile (§VII). This crate provides
//! the equivalent substrate in miniature: a single-file columnar format
//! holding many named series, each compressed with a per-series encoding
//! choice (any outer × operator pipeline, BOS included), with CRC-32
//! integrity on every chunk and a footer index for random access by name.
//!
//! ```text
//! file := magic
//!         chunk*                      one per series, written in order
//!         footer                      name → (offset, count, …) index
//!         u32 footer_crc · u64 footer_offset · magic
//!
//! chunk := u8 0x01 · varint name_len · name
//!          u8 value_type (0 int | 1 float) · [u8 decimals]
//!          u8 outer · u8 packer       encoding ids
//!          varint count · varint payload_len · payload · u32 payload_crc
//! ```
//!
//! ```
//! use tsfile::{EncodingChoice, TsFileReader, TsFileWriter};
//!
//! let mut w = TsFileWriter::new();
//! w.add_int_series("s1.temperature", &[20, 21, 21, 35, 20], EncodingChoice::TS2DIFF_BOS)
//!     .unwrap();
//! let bytes = w.finish();
//! let r = TsFileReader::open(&bytes).unwrap();
//! assert_eq!(r.read_ints("s1.temperature").unwrap(), vec![20, 21, 21, 35, 20]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;

use bitpack::error::DecodeError;
use bitpack::zigzag::{read_len_bounded, read_varint, write_varint};
use crc::crc32;

// Container-level metrics: chunk traffic in both directions plus CRC
// verification outcomes (footer and chunk checks both count — a mismatch
// here is the storage stack's first line of corruption evidence).
static CHUNKS_WRITTEN: obs::CounterHandle = obs::CounterHandle::new("tsfile.chunks_written");
static CHUNK_BYTES_WRITTEN: obs::CounterHandle =
    obs::CounterHandle::new("tsfile.chunk_bytes_written");
static CHUNKS_READ: obs::CounterHandle = obs::CounterHandle::new("tsfile.chunks_read");
static CRC_VERIFIED: obs::CounterHandle = obs::CounterHandle::new("tsfile.crc_verified");
static CRC_MISMATCH: obs::CounterHandle = obs::CounterHandle::new("tsfile.crc_mismatch");
// Salvage metrics: how many chunks the forward scan recovered vs skipped,
// and how often a file's footer had to be rebuilt from the body scan.
// `chunks_skipped` counts skip *events* (scan-time and per-series read
// discoveries both record here).
static SALVAGE_RECOVERED: obs::CounterHandle =
    obs::CounterHandle::new("tsfile.salvage.chunks_recovered");
static SALVAGE_SKIPPED: obs::CounterHandle =
    obs::CounterHandle::new("tsfile.salvage.chunks_skipped");
static SALVAGE_FOOTER_REBUILT: obs::CounterHandle =
    obs::CounterHandle::new("tsfile.salvage.footer_rebuilt");
use encodings::{OuterKind, PackerKind, Pipeline};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// File magic, 8 bytes (version byte last).
pub const MAGIC: &[u8; 8] = b"BOSTSF\x00\x01";

/// Errors returned by the reader/writer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsFileError {
    /// The file does not start/end with the magic or is structurally
    /// invalid.
    Corrupt(&'static str),
    /// A chunk or footer checksum mismatched.
    ChecksumMismatch {
        /// Which series (empty for the footer).
        series: String,
    },
    /// The requested series does not exist.
    NoSuchSeries(String),
    /// The series exists but holds the other value type.
    WrongType(String),
    /// A series with this name was already added.
    DuplicateSeries(String),
    /// The float series has no exact `×10^p` representation.
    UnrepresentableFloats(String),
    /// A header field or chunk payload failed to decode; carries the
    /// typed decoder error from the codec stack unchanged.
    Decode(DecodeError),
}

impl From<DecodeError> for TsFileError {
    fn from(e: DecodeError) -> Self {
        TsFileError::Decode(e)
    }
}

impl fmt::Display for TsFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Corrupt(what) => write!(f, "corrupt tsfile: {what}"),
            Self::ChecksumMismatch { series } if series.is_empty() => {
                write!(f, "footer checksum mismatch")
            }
            Self::ChecksumMismatch { series } => {
                write!(f, "checksum mismatch in series {series:?}")
            }
            Self::NoSuchSeries(name) => write!(f, "no such series: {name:?}"),
            Self::WrongType(name) => write!(f, "series {name:?} has the other value type"),
            Self::DuplicateSeries(name) => write!(f, "series {name:?} already added"),
            Self::UnrepresentableFloats(name) => write!(
                f,
                "series {name:?} has no exact decimal scaling; store pre-scaled integers instead"
            ),
            Self::Decode(e) => write!(f, "decode failed: {e}"),
        }
    }
}

impl std::error::Error for TsFileError {}

/// Per-series encoding choice: an outer transform plus an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingChoice {
    /// The outer encoding.
    pub outer: OuterKind,
    /// The inner bit-packing operator.
    pub packer: PackerKind,
}

impl EncodingChoice {
    /// The production default of the paper's deployment: TS2DIFF + BOS-B.
    pub const TS2DIFF_BOS: EncodingChoice = EncodingChoice {
        outer: OuterKind::Ts2Diff,
        packer: PackerKind::BosB,
    };

    /// The pre-BOS default: TS2DIFF + plain bit-packing.
    pub const TS2DIFF_BP: EncodingChoice = EncodingChoice {
        outer: OuterKind::Ts2Diff,
        packer: PackerKind::Bp,
    };

    /// Tries a small portfolio (TS2DIFF/RLE/SPRINTZ × BOS-B) and keeps
    /// whichever encodes `values` smallest — a pragmatic "auto" mode.
    pub fn auto_for(values: &[i64]) -> EncodingChoice {
        let default = EncodingChoice {
            outer: OuterKind::Ts2Diff,
            packer: PackerKind::BosB,
        };
        let candidates = [
            default,
            EncodingChoice {
                outer: OuterKind::Rle,
                packer: PackerKind::BosB,
            },
            EncodingChoice {
                outer: OuterKind::Sprintz,
                packer: PackerKind::BosB,
            },
        ];
        let mut best = default;
        let mut best_size = usize::MAX;
        let mut buf = Vec::new();
        for c in candidates {
            buf.clear();
            c.pipeline().encode(values, &mut buf);
            if buf.len() < best_size {
                best_size = buf.len();
                best = c;
            }
        }
        best
    }

    fn pipeline(&self) -> Pipeline {
        Pipeline::new(self.outer, self.packer)
    }

    fn outer_id(&self) -> u8 {
        match self.outer {
            OuterKind::Rle => 0,
            OuterKind::Ts2Diff => 1,
            OuterKind::Sprintz => 2,
        }
    }

    fn packer_id(&self) -> u8 {
        match self.packer {
            PackerKind::Bp => 0,
            PackerKind::Pfor => 1,
            PackerKind::NewPfor => 2,
            PackerKind::OptPfor => 3,
            PackerKind::FastPfor => 4,
            PackerKind::BosV => 5,
            PackerKind::BosB => 6,
            PackerKind::BosM => 7,
            // Appended in PR 3: ids 0-7 are persisted in existing files
            // and must not be renumbered.
            PackerKind::SimplePfor => 8,
        }
    }

    fn from_ids(outer: u8, packer: u8) -> Option<EncodingChoice> {
        let outer = match outer {
            0 => OuterKind::Rle,
            1 => OuterKind::Ts2Diff,
            2 => OuterKind::Sprintz,
            _ => return None,
        };
        let packer = match packer {
            0 => PackerKind::Bp,
            1 => PackerKind::Pfor,
            2 => PackerKind::NewPfor,
            3 => PackerKind::OptPfor,
            4 => PackerKind::FastPfor,
            5 => PackerKind::BosV,
            6 => PackerKind::BosB,
            7 => PackerKind::BosM,
            8 => PackerKind::SimplePfor,
            _ => return None,
        };
        Some(EncodingChoice { outer, packer })
    }

    /// Human-readable label, e.g. "TS2DIFF+BOS-B".
    pub fn label(&self) -> String {
        self.pipeline().label()
    }
}

const TYPE_INT: u8 = 0;
const TYPE_FLOAT: u8 = 1;
const CHUNK_TAG: u8 = 0x01;

/// Builds a TsFile in memory.
#[derive(Default)]
pub struct TsFileWriter {
    body: Vec<u8>,
    index: Vec<IndexEntry>,
    names: BTreeMap<String, ()>,
}

struct IndexEntry {
    name: String,
    offset: u64,
    count: u64,
    is_float: bool,
    encoding: EncodingChoice,
}

impl TsFileWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self {
            body: MAGIC.to_vec(),
            index: Vec::new(),
            names: BTreeMap::new(),
        }
    }

    fn check_name(&mut self, name: &str) -> Result<(), TsFileError> {
        if self.names.insert(name.to_string(), ()).is_some() {
            return Err(TsFileError::DuplicateSeries(name.to_string()));
        }
        Ok(())
    }

    fn add_chunk(
        &mut self,
        name: &str,
        value_type: u8,
        decimals: Option<u8>,
        encoding: EncodingChoice,
        count: usize,
        payload: &[u8],
    ) {
        let offset = self.body.len() as u64;
        self.body.push(CHUNK_TAG);
        write_varint(&mut self.body, name.len() as u64);
        self.body.extend_from_slice(name.as_bytes());
        self.body.push(value_type);
        if let Some(d) = decimals {
            self.body.push(d);
        }
        self.body.push(encoding.outer_id());
        self.body.push(encoding.packer_id());
        write_varint(&mut self.body, count as u64);
        write_varint(&mut self.body, payload.len() as u64);
        self.body.extend_from_slice(payload);
        let crc = crc32(payload);
        self.body.extend_from_slice(&crc.to_le_bytes());
        if obs::enabled() {
            CHUNKS_WRITTEN.inc();
            CHUNK_BYTES_WRITTEN.add(payload.len() as u64);
            obs::trail::emit(obs::trail::Event::ChunkSealed {
                bytes: payload.len() as u64,
                crc,
            });
        }
        self.index.push(IndexEntry {
            name: name.to_string(),
            offset,
            count: count as u64,
            is_float: value_type == TYPE_FLOAT,
            encoding,
        });
    }

    /// Adds an integer series compressed with `encoding`.
    pub fn add_int_series(
        &mut self,
        name: &str,
        values: &[i64],
        encoding: EncodingChoice,
    ) -> Result<(), TsFileError> {
        self.check_name(name)?;
        let mut payload = Vec::new();
        encoding.pipeline().encode(values, &mut payload);
        self.add_chunk(name, TYPE_INT, None, encoding, values.len(), &payload);
        Ok(())
    }

    /// Adds an integer series compressed with `encoding`, fanning the
    /// block encodes (and therefore the solver searches) across up to
    /// `threads` worker threads via [`Pipeline::encode_parallel`]. The
    /// chunk bytes are identical to [`add_int_series`](Self::add_int_series);
    /// only the wall-clock differs. Store compaction uses this to
    /// re-solve merged series without serializing on one core.
    pub fn add_int_series_parallel(
        &mut self,
        name: &str,
        values: &[i64],
        encoding: EncodingChoice,
        threads: usize,
    ) -> Result<(), TsFileError> {
        self.check_name(name)?;
        let mut payload = Vec::new();
        encoding
            .pipeline()
            .encode_parallel(values, threads, &mut payload);
        self.add_chunk(name, TYPE_INT, None, encoding, values.len(), &payload);
        Ok(())
    }

    /// Adds a float series (must have an exact `×10^p` representation —
    /// fixed-decimal telemetry does; free-form doubles may not).
    pub fn add_float_series(
        &mut self,
        name: &str,
        values: &[f64],
        encoding: EncodingChoice,
    ) -> Result<(), TsFileError> {
        self.check_name(name)?;
        let p = encodings::floatint::infer_precision(values)
            .ok_or_else(|| TsFileError::UnrepresentableFloats(name.to_string()))?;
        let ints = encodings::floatint::floats_to_ints(values, p)
            .ok_or_else(|| TsFileError::UnrepresentableFloats(name.to_string()))?;
        let mut payload = Vec::new();
        encoding.pipeline().encode(&ints, &mut payload);
        self.add_chunk(
            name,
            TYPE_FLOAT,
            Some(p as u8),
            encoding,
            values.len(),
            &payload,
        );
        Ok(())
    }

    /// Adds a timestamped integer series: the timestamp column is stored
    /// as its own chunk (`<name>/time`) with second-order differencing —
    /// regular timestamps collapse to almost nothing — and values as
    /// `<name>/value` with `encoding`. This mirrors how Apache TsFile
    /// stores (time, value) pages.
    pub fn add_timed_series(
        &mut self,
        name: &str,
        points: &[(i64, i64)],
        encoding: EncodingChoice,
    ) -> Result<(), TsFileError> {
        let times: Vec<i64> = points.iter().map(|&(t, _)| t).collect();
        let values: Vec<i64> = points.iter().map(|&(_, v)| v).collect();
        // Timestamps: second-order TS2DIFF + BOS-B, independent of the
        // value encoding choice.
        let time_name = format!("{name}/time");
        let value_name = format!("{name}/value");
        self.check_name(&time_name)?;
        self.check_name(&value_name)?;
        let mut payload = Vec::new();
        encodings::ts2diff::Ts2DiffEncoding::second_order(bos::BosCodec::new(
            bos::SolverKind::BitWidth,
        ))
        .encode(&times, &mut payload);
        // Timestamp chunks reuse the TS2DIFF+BOS-B encoding id; the order
        // byte inside the payload makes the stream self-describing.
        self.add_chunk(
            &time_name,
            TYPE_INT,
            None,
            EncodingChoice::TS2DIFF_BOS,
            times.len(),
            &payload,
        );
        let mut vpayload = Vec::new();
        encoding.pipeline().encode(&values, &mut vpayload);
        self.add_chunk(
            &value_name,
            TYPE_INT,
            None,
            encoding,
            values.len(),
            &vpayload,
        );
        Ok(())
    }

    /// Finalizes the file: footer index, footer CRC, trailer.
    pub fn finish(mut self) -> Vec<u8> {
        let _span = obs::span("tsfile.write_stream");
        let footer_offset = self.body.len() as u64;
        let mut footer = Vec::new();
        write_varint(&mut footer, self.index.len() as u64);
        for e in &self.index {
            write_varint(&mut footer, e.name.len() as u64);
            footer.extend_from_slice(e.name.as_bytes());
            write_varint(&mut footer, e.offset);
            write_varint(&mut footer, e.count);
            footer.push(e.is_float as u8);
            footer.push(e.encoding.outer_id());
            footer.push(e.encoding.packer_id());
        }
        let footer_crc = crc32(&footer);
        self.body.extend_from_slice(&footer);
        self.body.extend_from_slice(&footer_crc.to_le_bytes());
        self.body.extend_from_slice(&footer_offset.to_le_bytes());
        self.body.extend_from_slice(MAGIC);
        self.body
    }
}

/// Metadata of one series, from the footer index.
#[derive(Debug, Clone)]
pub struct SeriesInfo {
    /// Series name.
    pub name: String,
    /// Number of values.
    pub count: u64,
    /// Whether the series holds floats.
    pub is_float: bool,
    /// The encoding it was written with.
    pub encoding: EncodingChoice,
    /// Byte offset of its chunk.
    pub offset: u64,
}

/// Why the salvage path could not recover a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SkipReason {
    /// The payload bytes did not match the stored CRC-32.
    CrcMismatch,
    /// The chunk extends past the end of the readable bytes.
    Truncated,
    /// The chunk header failed structural validation, or a CRC-valid
    /// payload failed to decode.
    BadHeader,
    /// The chunk never made it into the (possibly rebuilt) index — its
    /// bytes are gone entirely, e.g. one column of a timestamped pair
    /// lost to a truncation that consumed the whole chunk.
    Missing,
}

impl SkipReason {
    /// Static label matching the `Display` form, usable as a trail
    /// event payload (which carries `&'static str`, not allocations).
    pub fn label(&self) -> &'static str {
        match self {
            Self::CrcMismatch => "crc-mismatch",
            Self::Truncated => "truncated",
            Self::BadHeader => "bad-header",
            Self::Missing => "missing",
        }
    }
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One chunk the salvage path saw but could not recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedChunk {
    /// The series the chunk claimed to belong to.
    pub series: String,
    /// Best-effort byte range of the damaged chunk in the file.
    pub range: Range<usize>,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// Result of a partial-recovery read: everything that decoded, plus a
/// record of what did not (empty on full recovery).
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageOutcome<T> {
    /// Values recovered from intact chunks, in file order.
    pub values: Vec<T>,
    /// Chunks that could not be recovered.
    pub skipped: Vec<SkippedChunk>,
}

/// Outcome of a salvage read of a timestamped (paired) series: the two
/// columns are recovered independently, and the variant states exactly
/// which sides survived so damage on one column can never surface as
/// silently misaligned `(time, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimedSalvage {
    /// Both columns decoded and align: full points, as written.
    Paired(Vec<(i64, i64)>),
    /// The value column was lost; timestamps survive.
    TimesOnly {
        /// The recovered timestamp column.
        times: Vec<i64>,
        /// Why the value column was skipped.
        skipped: Vec<SkippedChunk>,
    },
    /// The time column was lost; values survive (ordered, un-stamped).
    ValuesOnly {
        /// The recovered value column.
        values: Vec<i64>,
        /// Why the time column was skipped.
        skipped: Vec<SkippedChunk>,
    },
    /// Both columns decoded but their lengths differ, so pairing them
    /// up would misattribute timestamps; the columns are returned
    /// unzipped for the caller to reconcile.
    Misaligned {
        /// The recovered timestamp column.
        times: Vec<i64>,
        /// The recovered value column.
        values: Vec<i64>,
    },
    /// Neither column survived.
    Unrecovered {
        /// Why each column was skipped.
        skipped: Vec<SkippedChunk>,
    },
}

/// What [`TsFileReader::open_salvage`] found while building the file view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// True when the footer was missing or corrupt and the index was
    /// rebuilt by forward-scanning the body for chunk markers.
    pub footer_rebuilt: bool,
    /// Chunks the body scan saw but could not verify as intact. Empty
    /// when the footer was trusted (damage then surfaces per series via
    /// [`TsFileReader::read_ints_salvage`]).
    pub skipped: Vec<SkippedChunk>,
}

/// Parsed fixed fields of one chunk header plus its byte geometry.
struct ChunkHeader<'a> {
    name: &'a [u8],
    decimals: Option<u8>,
    encoding: EncodingChoice,
    count: usize,
    /// File offset of the first payload byte.
    payload_start: usize,
    payload_len: usize,
}

impl ChunkHeader<'_> {
    /// File offset one past the chunk's trailing CRC.
    fn end(&self) -> usize {
        // lint:allow(unchecked-arith-in-decode): both fields bounded by data.len() in parse_chunk_header
        self.payload_start + self.payload_len + 4
    }
}

/// Parses the chunk header starting at `start`, validating every field
/// but touching neither the payload nor the CRC.
fn parse_chunk_header(data: &[u8], start: usize) -> Result<ChunkHeader<'_>, TsFileError> {
    let mut pos = start;
    let corrupt = TsFileError::Corrupt("chunk header");
    if *data.get(pos).ok_or(corrupt.clone())? != CHUNK_TAG {
        return Err(corrupt);
    }
    pos += 1;
    // Lengths come from potentially corrupt bytes: bound each against the
    // bytes actually left so a flipped varint cannot demand gigabytes.
    let remaining = data.len() - pos;
    let nlen = read_len_bounded(data, &mut pos, remaining)?;
    let name_end = pos.checked_add(nlen).ok_or(corrupt.clone())?;
    let name = data.get(pos..name_end).ok_or(corrupt.clone())?;
    pos = name_end;
    let vtype = *data.get(pos).ok_or(corrupt.clone())?;
    pos += 1;
    if vtype != TYPE_INT && vtype != TYPE_FLOAT {
        return Err(TsFileError::Corrupt("value type"));
    }
    let decimals = if vtype == TYPE_FLOAT {
        let d = *data.get(pos).ok_or(corrupt.clone())?;
        pos += 1;
        Some(d)
    } else {
        None
    };
    let outer = *data.get(pos).ok_or(corrupt.clone())?;
    let packer = *data.get(pos + 1).ok_or(corrupt)?;
    pos += 2;
    let encoding =
        EncodingChoice::from_ids(outer, packer).ok_or(TsFileError::Corrupt("encoding id"))?;
    let count = read_len_bounded(data, &mut pos, bitpack::MAX_BLOCK_VALUES)?;
    let remaining = data.len() - pos;
    let payload_len = read_len_bounded(data, &mut pos, remaining)?;
    Ok(ChunkHeader {
        name,
        decimals,
        encoding,
        count,
        payload_start: pos,
        payload_len,
    })
}

/// Extracts the payload slice of a parsed chunk and checks its CRC.
/// Returns `Corrupt("chunk truncated")` when payload or CRC bytes are
/// missing, otherwise the payload and whether the CRC matched.
fn chunk_payload<'d>(
    data: &'d [u8],
    header: &ChunkHeader<'_>,
) -> Result<(&'d [u8], bool), TsFileError> {
    let truncated = TsFileError::Corrupt("chunk truncated");
    let crc_pos = header
        .payload_start
        .checked_add(header.payload_len)
        .ok_or(truncated.clone())?;
    let payload = data
        .get(header.payload_start..crc_pos)
        .ok_or(truncated.clone())?;
    let stored = data.get(crc_pos..crc_pos + 4).ok_or(truncated.clone())?;
    let stored_crc = match <[u8; 4]>::try_from(stored) {
        Ok(b) => u32::from_le_bytes(b),
        Err(_) => return Err(truncated),
    };
    Ok((payload, crc32(payload) == stored_crc))
}

/// Decodes a CRC-verified payload and checks the decoded count.
fn decode_chunk_values(header: &ChunkHeader<'_>, payload: &[u8]) -> Result<Vec<i64>, TsFileError> {
    let mut out = Vec::with_capacity(header.count);
    let mut ppos = 0;
    header
        .encoding
        .pipeline()
        .decode(payload, &mut ppos, &mut out)?;
    if out.len() != header.count {
        return Err(TsFileError::Corrupt("value count mismatch"));
    }
    Ok(out)
}

/// Maps a chunk-read failure onto the salvage skip taxonomy.
fn skip_reason(e: &TsFileError) -> SkipReason {
    match e {
        TsFileError::ChecksumMismatch { .. } => SkipReason::CrcMismatch,
        TsFileError::Decode(DecodeError::Truncated) | TsFileError::Corrupt("chunk truncated") => {
            SkipReason::Truncated
        }
        _ => SkipReason::BadHeader,
    }
}

/// Reads a TsFile from a byte buffer.
pub struct TsFileReader<'a> {
    data: &'a [u8],
    series: Vec<SeriesInfo>,
}

impl<'a> TsFileReader<'a> {
    /// Parses the footer index and validates the envelope.
    pub fn open(data: &'a [u8]) -> Result<Self, TsFileError> {
        // lint:allow(unchecked-arith-in-decode): MAGIC.len() is the constant 8
        let min = MAGIC.len() * 2 + 12;
        if data.len() < min
            || data.get(..8).is_none_or(|m| m != MAGIC)
            || data.get(data.len() - 8..).is_none_or(|m| m != MAGIC)
        {
            return Err(TsFileError::Corrupt("bad magic"));
        }
        let tail = data.len() - 8;
        let off_bytes = data
            .get(tail - 8..tail)
            .ok_or(TsFileError::Corrupt("bad footer offset"))?;
        let footer_offset = match <[u8; 8]>::try_from(off_bytes) {
            Ok(b) => u64::from_le_bytes(b) as usize,
            Err(_) => return Err(TsFileError::Corrupt("bad footer offset")),
        };
        if footer_offset < 8 || footer_offset >= tail.saturating_sub(12) {
            return Err(TsFileError::Corrupt("bad footer offset"));
        }
        let footer = data
            .get(footer_offset..tail - 12)
            .ok_or(TsFileError::Corrupt("bad footer offset"))?;
        let crc_bytes = data
            .get(tail - 12..tail - 8)
            .ok_or(TsFileError::Corrupt("bad footer offset"))?;
        let stored_crc = match <[u8; 4]>::try_from(crc_bytes) {
            Ok(b) => u32::from_le_bytes(b),
            Err(_) => return Err(TsFileError::Corrupt("bad footer offset")),
        };
        if crc32(footer) != stored_crc {
            if obs::enabled() {
                CRC_MISMATCH.inc();
            }
            return Err(TsFileError::ChecksumMismatch {
                series: String::new(),
            });
        }
        if obs::enabled() {
            CRC_VERIFIED.inc();
        }
        let mut pos = 0usize;
        // Entry counts and name lengths are attacker-controlled on a
        // corrupt file: bound them before use (decode-bomb guard).
        let count = read_len_bounded(footer, &mut pos, 1 << 20)?;
        let mut series = Vec::with_capacity(count);
        for _ in 0..count {
            let remaining = footer.len() - pos;
            let nlen = read_len_bounded(footer, &mut pos, remaining)?;
            let name_end = pos
                .checked_add(nlen)
                .ok_or(TsFileError::Corrupt("name bytes"))?;
            let name_bytes = footer
                .get(pos..name_end)
                .ok_or(TsFileError::Corrupt("name bytes"))?;
            pos = name_end;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| TsFileError::Corrupt("name utf8"))?
                .to_string();
            let offset = read_varint(footer, &mut pos)?;
            let vcount = read_varint(footer, &mut pos)?;
            let (is_float, outer, packer) = match footer.get(pos..pos + 3) {
                Some([a, b, c]) => (*a, *b, *c),
                _ => return Err(TsFileError::Corrupt("flags")),
            };
            pos += 3;
            let encoding = EncodingChoice::from_ids(outer, packer)
                .ok_or(TsFileError::Corrupt("encoding id"))?;
            series.push(SeriesInfo {
                name,
                count: vcount,
                is_float: is_float == 1,
                encoding,
                offset,
            });
        }
        Ok(Self { data, series })
    }

    /// Index of all series in write order.
    pub fn series(&self) -> &[SeriesInfo] {
        &self.series
    }

    /// Looks up a series by name.
    pub fn info(&self, name: &str) -> Result<&SeriesInfo, TsFileError> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| TsFileError::NoSuchSeries(name.to_string()))
    }

    /// Parses a chunk at `info.offset`, verifying its CRC. Returns the
    /// decimals (floats only) and decoded integers.
    fn read_chunk(&self, info: &SeriesInfo) -> Result<(Option<u8>, Vec<i64>), TsFileError> {
        let header = parse_chunk_header(self.data, info.offset as usize)?;
        if header.name != info.name.as_bytes() {
            return Err(TsFileError::Corrupt("index/chunk name mismatch"));
        }
        let (payload, crc_ok) = chunk_payload(self.data, &header)?;
        if !crc_ok {
            if obs::enabled() {
                CRC_MISMATCH.inc();
            }
            return Err(TsFileError::ChecksumMismatch {
                series: info.name.clone(),
            });
        }
        if obs::enabled() {
            CRC_VERIFIED.inc();
            CHUNKS_READ.inc();
        }
        let values = decode_chunk_values(&header, payload)?;
        Ok((header.decimals, values))
    }

    /// Best-effort byte extent of a series' chunk, clamped to the file.
    fn chunk_extent(&self, info: &SeriesInfo) -> Range<usize> {
        let start = info.offset as usize;
        match parse_chunk_header(self.data, start) {
            Ok(h) => start..h.end().min(self.data.len()),
            Err(_) => start..self.data.len(),
        }
    }

    /// Byte ranges of the named series' chunk: the whole chunk (tag
    /// through CRC) and the payload-only subrange. Fault-injection
    /// harnesses use this to aim corruption at one chunk precisely.
    pub fn chunk_ranges(&self, name: &str) -> Result<(Range<usize>, Range<usize>), TsFileError> {
        let info = self.info(name)?;
        let start = info.offset as usize;
        let header = parse_chunk_header(self.data, start)?;
        // lint:allow(unchecked-arith-in-decode): both fields bounded by data.len() in parse_chunk_header
        let payload = header.payload_start..header.payload_start + header.payload_len;
        Ok((start..header.end(), payload))
    }

    /// Opens a possibly damaged file, degrading gracefully instead of
    /// refusing it.
    ///
    /// When [`open`](Self::open) succeeds the footer index is trusted
    /// verbatim and the report is empty — the happy path is unchanged.
    /// Otherwise the body is forward-scanned for chunk markers; every
    /// candidate header is re-validated and its payload checked against
    /// the chunk CRC before it is admitted to the rebuilt index. Chunks
    /// that parse but fail verification are still indexed (so per-series
    /// reads can report them) and recorded in the report.
    ///
    /// The scan stops at the footer offset when the tail trailer still
    /// looks sane, else at the end of the buffer.
    pub fn open_salvage(data: &'a [u8]) -> (Self, SalvageReport) {
        let _span = obs::span("tsfile.open_salvage");
        if let Ok(reader) = Self::open(data) {
            return (
                reader,
                SalvageReport {
                    footer_rebuilt: false,
                    skipped: Vec::new(),
                },
            );
        }
        if obs::enabled() {
            SALVAGE_FOOTER_REBUILT.inc();
        }
        // The footer (or envelope) is untrusted. If the tail trailer still
        // parses to a plausible footer offset, stop the scan there so
        // footer bytes cannot masquerade as chunks; otherwise scan it all.
        let mut scan_end = data.len();
        // lint:allow(unchecked-arith-in-decode): MAGIC.len() is the constant 8
        if data.len() >= MAGIC.len() * 2 + 12
            && data.get(data.len() - 8..).is_some_and(|m| m == MAGIC)
        {
            let tail = data.len() - 8;
            if let Some(Ok(b)) = data.get(tail - 8..tail).map(<[u8; 8]>::try_from) {
                let off = u64::from_le_bytes(b) as usize;
                if off >= MAGIC.len() && off <= tail - 12 {
                    scan_end = off;
                }
            }
        }
        let start = if data.get(..MAGIC.len()).is_some_and(|m| m == MAGIC) {
            MAGIC.len()
        } else {
            0
        };
        // (info, damaged) in file order; by_name maps to the entry index.
        let mut entries: Vec<(SeriesInfo, bool)> = Vec::new();
        let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
        let mut skipped = Vec::new();
        let mut pos = start;
        while pos < scan_end {
            if data.get(pos) != Some(&CHUNK_TAG) {
                pos += 1;
                continue;
            }
            let Ok(header) = parse_chunk_header(data, pos) else {
                pos += 1;
                continue;
            };
            let Ok(name) = std::str::from_utf8(header.name) else {
                pos += 1;
                continue;
            };
            let info = SeriesInfo {
                name: name.to_string(),
                count: header.count as u64,
                is_float: header.decimals.is_some(),
                encoding: header.encoding,
                offset: pos as u64,
            };
            match chunk_payload(data, &header) {
                Ok((_, true)) => {
                    // Verified chunk: index it, replacing an earlier
                    // damaged claimant of the same name (first verified
                    // occurrence wins otherwise).
                    match by_name.get(name) {
                        Some(&i) => {
                            if let Some(entry) = entries.get_mut(i) {
                                if entry.1 {
                                    *entry = (info, false);
                                }
                            }
                        }
                        None => {
                            by_name.insert(name.to_string(), entries.len());
                            entries.push((info, false));
                        }
                    }
                    if obs::enabled() {
                        SALVAGE_RECOVERED.inc();
                    }
                    pos = header.end();
                }
                payload_result => {
                    // Parsed but unverifiable: remember it (a later clean
                    // copy may replace it), report it, and keep scanning
                    // from the next byte — the claimed extent itself may
                    // be part of the damage.
                    let reason = match payload_result {
                        Ok(_) => SkipReason::CrcMismatch,
                        Err(_) => SkipReason::Truncated,
                    };
                    if !by_name.contains_key(name) {
                        by_name.insert(name.to_string(), entries.len());
                        entries.push((info, true));
                    }
                    skipped.push(SkippedChunk {
                        series: name.to_string(),
                        range: pos..header.end().min(data.len()),
                        reason,
                    });
                    if obs::enabled() {
                        SALVAGE_SKIPPED.inc();
                        obs::trail::emit(obs::trail::Event::SalvageSkip {
                            reason: reason.label(),
                            offset: pos as u64,
                        });
                    }
                    pos += 1;
                }
            }
        }
        let series = entries.into_iter().map(|(info, _)| info).collect();
        (
            Self { data, series },
            SalvageReport {
                footer_rebuilt: true,
                skipped,
            },
        )
    }

    /// Partial-recovery read of an integer series: decodes what survives
    /// and reports what does not, instead of failing the whole read.
    ///
    /// Errors only for lookup problems ([`TsFileError::NoSuchSeries`] /
    /// [`TsFileError::WrongType`]); chunk damage is returned inside the
    /// outcome.
    pub fn read_ints_salvage(&self, name: &str) -> Result<SalvageOutcome<i64>, TsFileError> {
        let info = self.info(name)?.clone();
        if info.is_float {
            return Err(TsFileError::WrongType(name.to_string()));
        }
        match self.read_chunk(&info) {
            Ok((_, values)) => Ok(SalvageOutcome {
                values,
                skipped: Vec::new(),
            }),
            Err(e) => Ok(self.skip_outcome(&info, &e)),
        }
    }

    /// Partial-recovery read of a float series; see
    /// [`read_ints_salvage`](Self::read_ints_salvage).
    pub fn read_floats_salvage(&self, name: &str) -> Result<SalvageOutcome<f64>, TsFileError> {
        let info = self.info(name)?.clone();
        if !info.is_float {
            return Err(TsFileError::WrongType(name.to_string()));
        }
        match self.read_chunk(&info) {
            Ok((decimals, ints)) => {
                let p = decimals.ok_or(TsFileError::Corrupt("missing decimals"))? as u32;
                Ok(SalvageOutcome {
                    values: encodings::floatint::ints_to_floats(&ints, p),
                    skipped: Vec::new(),
                })
            }
            Err(e) => Ok(self.skip_outcome(&info, &e)),
        }
    }

    /// Builds the all-skipped outcome for a chunk that failed to read.
    fn skip_outcome<T>(&self, info: &SeriesInfo, e: &TsFileError) -> SalvageOutcome<T> {
        let reason = skip_reason(e);
        if obs::enabled() {
            SALVAGE_SKIPPED.inc();
            obs::trail::emit(obs::trail::Event::SalvageSkip {
                reason: reason.label(),
                offset: info.offset,
            });
        }
        SalvageOutcome {
            values: Vec::new(),
            skipped: vec![SkippedChunk {
                series: info.name.clone(),
                range: self.chunk_extent(info),
                reason,
            }],
        }
    }

    /// Reads an integer series by name.
    pub fn read_ints(&self, name: &str) -> Result<Vec<i64>, TsFileError> {
        let info = self.info(name)?.clone();
        if info.is_float {
            return Err(TsFileError::WrongType(name.to_string()));
        }
        Ok(self.read_chunk(&info)?.1)
    }

    /// Reads a timestamped series written by
    /// [`TsFileWriter::add_timed_series`].
    pub fn read_timed_series(&self, name: &str) -> Result<Vec<(i64, i64)>, TsFileError> {
        let time_name = format!("{name}/time");
        let value_name = format!("{name}/value");
        let tinfo = self.info(&time_name)?.clone();
        let (_, payload_times) = self.read_chunk_raw(&tinfo)?;
        let values = self.read_ints(&value_name)?;
        if payload_times.len() != values.len() {
            return Err(TsFileError::Corrupt("time/value length mismatch"));
        }
        Ok(payload_times.into_iter().zip(values).collect())
    }

    /// Partial-recovery read of a timestamped series written by
    /// [`TsFileWriter::add_timed_series`]: each column is salvaged
    /// independently and the [`TimedSalvage`] variant states which
    /// sides survived, so a skipped chunk on one side degrades to a
    /// typed partial pair instead of misaligned columns.
    ///
    /// Errors only when *neither* column exists in the index under any
    /// state ([`TsFileError::NoSuchSeries`]); a single missing column is
    /// reported inside the outcome with [`SkipReason::Missing`].
    pub fn read_timed_salvage(&self, name: &str) -> Result<TimedSalvage, TsFileError> {
        let time_name = format!("{name}/time");
        let value_name = format!("{name}/value");
        let missing = |series: &str| SkippedChunk {
            series: series.to_string(),
            range: 0..0,
            reason: SkipReason::Missing,
        };
        let column = |col: &str| -> Result<SalvageOutcome<i64>, TsFileError> {
            match self.read_ints_salvage(col) {
                Ok(out) => Ok(out),
                Err(TsFileError::NoSuchSeries(_)) => Ok(SalvageOutcome {
                    values: Vec::new(),
                    skipped: vec![missing(col)],
                }),
                Err(e) => Err(e),
            }
        };
        if self.info(&time_name).is_err() && self.info(&value_name).is_err() {
            return Err(TsFileError::NoSuchSeries(name.to_string()));
        }
        let times = column(&time_name)?;
        let values = column(&value_name)?;
        let (t_ok, v_ok) = (times.skipped.is_empty(), values.skipped.is_empty());
        Ok(match (t_ok, v_ok) {
            (true, true) if times.values.len() == values.values.len() => {
                TimedSalvage::Paired(times.values.into_iter().zip(values.values).collect())
            }
            (true, true) => TimedSalvage::Misaligned {
                times: times.values,
                values: values.values,
            },
            (true, false) => TimedSalvage::TimesOnly {
                times: times.values,
                skipped: values.skipped,
            },
            (false, true) => TimedSalvage::ValuesOnly {
                values: values.values,
                skipped: times.skipped,
            },
            (false, false) => {
                let mut skipped = times.skipped;
                skipped.extend(values.skipped);
                TimedSalvage::Unrecovered { skipped }
            }
        })
    }

    /// Reads a chunk as raw integers, decoding timestamp chunks with the
    /// self-describing TS2DIFF path.
    fn read_chunk_raw(&self, info: &SeriesInfo) -> Result<(Option<u8>, Vec<i64>), TsFileError> {
        self.read_chunk(info)
    }

    /// Reads a float series by name.
    pub fn read_floats(&self, name: &str) -> Result<Vec<f64>, TsFileError> {
        let info = self.info(name)?.clone();
        if !info.is_float {
            return Err(TsFileError::WrongType(name.to_string()));
        }
        let (decimals, ints) = self.read_chunk(&info)?;
        let p = decimals.ok_or(TsFileError::Corrupt("missing decimals"))? as u32;
        Ok(encodings::floatint::ints_to_floats(&ints, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_multiple_series() {
        let mut w = TsFileWriter::new();
        let temps: Vec<i64> = (0..5000).map(|i| 200 + (i % 15)).collect();
        let loads: Vec<f64> = (0..3000).map(|i| (i % 97) as f64 / 10.0).collect();
        w.add_int_series("plant1.temp", &temps, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        w.add_float_series("plant1.load", &loads, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        w.add_int_series("plant1.rpm", &[0; 100], EncodingChoice::TS2DIFF_BP)
            .unwrap();
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert_eq!(r.series().len(), 3);
        assert_eq!(r.read_ints("plant1.temp").unwrap(), temps);
        assert_eq!(r.read_floats("plant1.load").unwrap(), loads);
        assert_eq!(r.read_ints("plant1.rpm").unwrap(), vec![0; 100]);
    }

    #[test]
    fn error_paths() {
        let mut w = TsFileWriter::new();
        w.add_int_series("a", &[1, 2, 3], EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        assert_eq!(
            w.add_int_series("a", &[4], EncodingChoice::TS2DIFF_BOS),
            Err(TsFileError::DuplicateSeries("a".into()))
        );
        assert_eq!(
            w.add_float_series("pi", &[std::f64::consts::PI], EncodingChoice::TS2DIFF_BOS),
            Err(TsFileError::UnrepresentableFloats("pi".into()))
        );
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert!(matches!(
            r.read_ints("missing"),
            Err(TsFileError::NoSuchSeries(_))
        ));
        assert!(matches!(r.read_floats("a"), Err(TsFileError::WrongType(_))));
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut w = TsFileWriter::new();
        // Incompressible-ish values so the payload is comfortably larger
        // than the headers and the flipped byte lands inside it.
        let values: Vec<i64> = (0..2000).map(|i| (i * i * 37) % 10_007).collect();
        w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        let mut bytes = w.finish();
        assert!(bytes.len() > 500);
        bytes[200] ^= 0x40; // inside the chunk payload
        let r = TsFileReader::open(&bytes).unwrap();
        assert!(matches!(
            r.read_ints("s"),
            Err(TsFileError::ChecksumMismatch { .. }) | Err(TsFileError::Corrupt(_))
        ));
    }

    #[test]
    fn footer_corruption_is_detected() {
        let mut w = TsFileWriter::new();
        w.add_int_series("s", &[1, 2, 3], EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        let mut bytes = w.finish();
        let footer_byte = bytes.len() - 20; // inside the footer
        bytes[footer_byte] ^= 0xFF;
        assert!(TsFileReader::open(&bytes).is_err());
    }

    #[test]
    fn truncated_and_garbage_files() {
        assert!(TsFileReader::open(b"").is_err());
        assert!(TsFileReader::open(b"not a tsfile at all").is_err());
        let mut w = TsFileWriter::new();
        w.add_int_series("s", &[1], EncodingChoice::TS2DIFF_BP)
            .unwrap();
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let _ = TsFileReader::open(&bytes[..cut]); // must not panic
        }
    }

    #[test]
    fn timed_series_roundtrip() {
        // Regular 1 Hz timestamps with small jitter + a value channel.
        let points: Vec<(i64, i64)> = (0..20_000i64)
            .map(|i| (1_700_000_000_000 + i * 1000 + (i % 3), 500 + (i % 12)))
            .collect();
        let mut w = TsFileWriter::new();
        w.add_timed_series("engine.rpm", &points, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert_eq!(r.read_timed_series("engine.rpm").unwrap(), points);
        // Both columns appear in the index.
        assert!(r.info("engine.rpm/time").is_ok());
        assert!(r.info("engine.rpm/value").is_ok());
        // Second-order differencing makes the timestamp column tiny:
        // well under 1 bit per point for near-regular stamps.
        let tinfo = r.info("engine.rpm/time").unwrap();
        let vinfo = r.info("engine.rpm/value").unwrap();
        let time_bytes = (vinfo.offset - tinfo.offset) as usize;
        assert!(
            time_bytes < points.len() / 2,
            "time column {time_bytes} bytes"
        );
    }

    #[test]
    fn timed_series_name_collisions() {
        let mut w = TsFileWriter::new();
        w.add_int_series("a/time", &[1], EncodingChoice::TS2DIFF_BP)
            .unwrap();
        assert!(matches!(
            w.add_timed_series("a", &[(1, 2)], EncodingChoice::TS2DIFF_BOS),
            Err(TsFileError::DuplicateSeries(_))
        ));
    }

    #[test]
    fn auto_encoding_picks_sensibly() {
        // Highly repetitive data → RLE should win.
        let runs: Vec<i64> = (0..4000).map(|i| (i / 500) % 3).collect();
        let choice = EncodingChoice::auto_for(&runs);
        assert_eq!(choice.outer, OuterKind::Rle, "got {}", choice.label());
        // Smooth trending data → a delta encoding should win.
        let smooth: Vec<i64> = (0..4000).map(|i| i * 7 + (i % 3)).collect();
        let choice = EncodingChoice::auto_for(&smooth);
        assert_ne!(choice.outer, OuterKind::Rle, "got {}", choice.label());
    }

    #[test]
    fn bos_shrinks_the_file() {
        let mut values: Vec<i64> = (0..20_000).map(|i| 1000 + (i % 12)).collect();
        for i in (0..values.len()).step_by(300) {
            values[i] = 1 << 35;
        }
        let size_with = {
            let mut w = TsFileWriter::new();
            w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BOS)
                .unwrap();
            w.finish().len()
        };
        let size_without = {
            let mut w = TsFileWriter::new();
            w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BP)
                .unwrap();
            w.finish().len()
        };
        assert!(
            size_with * 2 < size_without,
            "{size_with} vs {size_without}"
        );
    }

    #[test]
    fn empty_file_roundtrips() {
        let bytes = TsFileWriter::new().finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert!(r.series().is_empty());
    }

    /// Three int series with payloads big enough to aim corruption at.
    fn salvage_fixture() -> (Vec<u8>, Vec<Vec<i64>>) {
        let mut w = TsFileWriter::new();
        let series: Vec<Vec<i64>> = (0..3)
            .map(|s| (0..1500).map(|i| (i * i * 31 + s * 7) % 9973).collect())
            .collect();
        for (s, values) in series.iter().enumerate() {
            w.add_int_series(&format!("s{s}"), values, EncodingChoice::TS2DIFF_BOS)
                .unwrap();
        }
        (w.finish(), series)
    }

    #[test]
    fn salvage_on_intact_file_is_invisible() {
        let (bytes, series) = salvage_fixture();
        let (r, report) = TsFileReader::open_salvage(&bytes);
        assert!(!report.footer_rebuilt);
        assert!(report.skipped.is_empty());
        for (s, values) in series.iter().enumerate() {
            let out = r.read_ints_salvage(&format!("s{s}")).unwrap();
            assert_eq!(&out.values, values);
            assert!(out.skipped.is_empty());
        }
    }

    #[test]
    fn salvage_rebuilds_index_after_footer_destruction() {
        let (mut bytes, series) = salvage_fixture();
        let footer_start = {
            let tail = bytes.len() - 8;
            u64::from_le_bytes(bytes[tail - 8..tail].try_into().unwrap()) as usize
        };
        // Obliterate footer, trailer and magic alike.
        for b in &mut bytes[footer_start..] {
            *b = 0x5A;
        }
        assert!(TsFileReader::open(&bytes).is_err());
        let (r, report) = TsFileReader::open_salvage(&bytes);
        assert!(report.footer_rebuilt);
        assert!(report.skipped.is_empty());
        assert_eq!(r.series().len(), series.len());
        for (s, values) in series.iter().enumerate() {
            assert_eq!(r.read_ints(&format!("s{s}")).unwrap(), *values);
        }
    }

    #[test]
    fn salvage_reports_corrupt_chunk_and_recovers_the_rest() {
        let (mut bytes, series) = salvage_fixture();
        let (chunk, payload) = {
            let r = TsFileReader::open(&bytes).unwrap();
            r.chunk_ranges("s1").unwrap()
        };
        assert!(payload.start >= chunk.start && payload.end + 4 <= chunk.end);
        bytes[payload.start + payload.len() / 2] ^= 0x10;
        let (r, report) = TsFileReader::open_salvage(&bytes);
        assert!(!report.footer_rebuilt, "footer untouched");
        let bad = r.read_ints_salvage("s1").unwrap();
        assert!(bad.values.is_empty());
        assert_eq!(bad.skipped.len(), 1);
        assert_eq!(bad.skipped[0].series, "s1");
        assert_eq!(bad.skipped[0].reason, SkipReason::CrcMismatch);
        assert_eq!(bad.skipped[0].range, chunk);
        for s in [0usize, 2] {
            let out = r.read_ints_salvage(&format!("s{s}")).unwrap();
            assert_eq!(out.values, series[s]);
            assert!(out.skipped.is_empty());
        }
    }

    #[test]
    fn salvage_reports_bad_header_when_chunk_tag_is_corrupt() {
        let (mut bytes, series) = salvage_fixture();
        let (chunk, _) = {
            let r = TsFileReader::open(&bytes).unwrap();
            r.chunk_ranges("s1").unwrap()
        };
        // Flip the chunk tag itself: the header no longer parses, which
        // is neither a CRC mismatch nor a truncation.
        bytes[chunk.start] ^= 0xFF;
        let (r, _report) = TsFileReader::open_salvage(&bytes);
        let bad = r.read_ints_salvage("s1").unwrap();
        assert!(bad.values.is_empty());
        assert_eq!(bad.skipped.len(), 1);
        assert_eq!(bad.skipped[0].reason, SkipReason::BadHeader);
        for s in [0usize, 2] {
            let out = r.read_ints_salvage(&format!("s{s}")).unwrap();
            assert_eq!(out.values, series[s]);
        }
    }

    #[test]
    fn salvage_scan_indexes_damaged_chunks() {
        // Footer gone AND one chunk corrupted: the scan must still index
        // the damaged chunk (reporting it) and verify the others.
        let (mut bytes, series) = salvage_fixture();
        let (_, payload) = {
            let r = TsFileReader::open(&bytes).unwrap();
            r.chunk_ranges("s0").unwrap()
        };
        bytes[payload.start + 3] ^= 0xFF;
        let cut = {
            let tail = bytes.len() - 8;
            u64::from_le_bytes(bytes[tail - 8..tail].try_into().unwrap()) as usize
        };
        bytes.truncate(cut);
        let (r, report) = TsFileReader::open_salvage(&bytes);
        assert!(report.footer_rebuilt);
        assert!(report
            .skipped
            .iter()
            .any(|s| s.series == "s0" && s.reason == SkipReason::CrcMismatch));
        let bad = r.read_ints_salvage("s0").unwrap();
        assert!(bad.values.is_empty());
        assert_eq!(bad.skipped[0].reason, SkipReason::CrcMismatch);
        for s in [1usize, 2] {
            assert_eq!(r.read_ints(&format!("s{s}")).unwrap(), series[s]);
        }
    }

    #[test]
    fn salvage_of_truncated_file_keeps_full_prefix() {
        let (mut bytes, series) = salvage_fixture();
        let (chunk2, _) = {
            let r = TsFileReader::open(&bytes).unwrap();
            r.chunk_ranges("s2").unwrap()
        };
        // Cut mid-way through the last chunk: s0/s1 survive whole.
        bytes.truncate(chunk2.start + (chunk2.end - chunk2.start) / 2);
        let (r, report) = TsFileReader::open_salvage(&bytes);
        assert!(report.footer_rebuilt);
        assert_eq!(r.read_ints("s0").unwrap(), series[0]);
        assert_eq!(r.read_ints("s1").unwrap(), series[1]);
        // The torn tail chunk is either reported truncated or invisible,
        // depending on where the cut landed.
        if let Ok(out) = r.read_ints_salvage("s2") {
            assert!(out.values.is_empty());
            assert_eq!(out.skipped[0].reason, SkipReason::Truncated);
        }
        let _ = report;
    }

    #[test]
    fn salvage_float_series() {
        let mut w = TsFileWriter::new();
        let vals: Vec<f64> = (0..800).map(|i| (i % 113) as f64 / 100.0).collect();
        w.add_float_series("f", &vals, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        w.add_int_series("i", &[7; 64], EncodingChoice::TS2DIFF_BP)
            .unwrap();
        let mut bytes = w.finish();
        let (_, payload) = {
            let r = TsFileReader::open(&bytes).unwrap();
            r.chunk_ranges("f").unwrap()
        };
        bytes[payload.start] ^= 0x01;
        let (r, _) = TsFileReader::open_salvage(&bytes);
        let out = r.read_floats_salvage("f").unwrap();
        assert!(out.values.is_empty());
        assert_eq!(out.skipped[0].reason, SkipReason::CrcMismatch);
        assert_eq!(r.read_ints_salvage("i").unwrap().values, vec![7; 64]);
        // Type guards still apply.
        assert!(matches!(
            r.read_ints_salvage("f"),
            Err(TsFileError::WrongType(_))
        ));
        assert!(matches!(
            r.read_floats_salvage("missing"),
            Err(TsFileError::NoSuchSeries(_))
        ));
    }

    /// One timed series plus byte ranges of its two column chunks.
    #[allow(clippy::type_complexity)]
    fn timed_fixture() -> (Vec<u8>, Vec<(i64, i64)>, Range<usize>, Range<usize>) {
        let points: Vec<(i64, i64)> = (0..3000i64)
            .map(|i| (1_700_000_000 + i * 100 + (i % 2), (i * i * 29) % 4093))
            .collect();
        let mut w = TsFileWriter::new();
        w.add_timed_series("m", &points, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        let (_, tpay) = r.chunk_ranges("m/time").unwrap();
        let (_, vpay) = r.chunk_ranges("m/value").unwrap();
        (bytes, points, tpay, vpay)
    }

    #[test]
    fn timed_salvage_pairs_when_intact() {
        let (bytes, points, _, _) = timed_fixture();
        let (r, _) = TsFileReader::open_salvage(&bytes);
        assert_eq!(
            r.read_timed_salvage("m").unwrap(),
            TimedSalvage::Paired(points)
        );
        assert!(matches!(
            r.read_timed_salvage("nope"),
            Err(TsFileError::NoSuchSeries(_))
        ));
    }

    #[test]
    fn timed_salvage_keeps_times_when_values_die() {
        let (mut bytes, points, _, vpay) = timed_fixture();
        bytes[vpay.start + vpay.len() / 2] ^= 0x08;
        let (r, _) = TsFileReader::open_salvage(&bytes);
        match r.read_timed_salvage("m").unwrap() {
            TimedSalvage::TimesOnly { times, skipped } => {
                let want: Vec<i64> = points.iter().map(|&(t, _)| t).collect();
                assert_eq!(times, want);
                assert_eq!(skipped.len(), 1);
                assert_eq!(skipped[0].series, "m/value");
                assert_eq!(skipped[0].reason, SkipReason::CrcMismatch);
            }
            other => panic!("expected TimesOnly, got {other:?}"),
        }
    }

    #[test]
    fn timed_salvage_keeps_values_when_times_die() {
        let (mut bytes, points, tpay, _) = timed_fixture();
        bytes[tpay.start + 1] ^= 0x20;
        let (r, _) = TsFileReader::open_salvage(&bytes);
        match r.read_timed_salvage("m").unwrap() {
            TimedSalvage::ValuesOnly { values, skipped } => {
                let want: Vec<i64> = points.iter().map(|&(_, v)| v).collect();
                assert_eq!(values, want);
                assert_eq!(skipped[0].series, "m/time");
            }
            other => panic!("expected ValuesOnly, got {other:?}"),
        }
    }

    #[test]
    fn timed_salvage_reports_both_columns_lost() {
        let (mut bytes, _, tpay, vpay) = timed_fixture();
        bytes[tpay.start] ^= 0x04;
        bytes[vpay.start] ^= 0x04;
        let (r, _) = TsFileReader::open_salvage(&bytes);
        match r.read_timed_salvage("m").unwrap() {
            TimedSalvage::Unrecovered { skipped } => {
                assert_eq!(skipped.len(), 2);
                let names: Vec<&str> = skipped.iter().map(|s| s.series.as_str()).collect();
                assert_eq!(names, ["m/time", "m/value"]);
            }
            other => panic!("expected Unrecovered, got {other:?}"),
        }
    }

    #[test]
    fn timed_salvage_types_a_fully_missing_column() {
        // Only the value column exists: the time side is typed Missing,
        // not conflated with in-file damage.
        let mut w = TsFileWriter::new();
        w.add_int_series("m/value", &[5, 6, 7], EncodingChoice::TS2DIFF_BP)
            .unwrap();
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        match r.read_timed_salvage("m").unwrap() {
            TimedSalvage::ValuesOnly { values, skipped } => {
                assert_eq!(values, vec![5, 6, 7]);
                assert_eq!(skipped[0].reason, SkipReason::Missing);
                assert_eq!(SkipReason::Missing.label(), "missing");
                assert!(skipped[0].range.is_empty());
            }
            other => panic!("expected ValuesOnly, got {other:?}"),
        }
    }

    #[test]
    fn timed_salvage_detects_misaligned_columns() {
        // Hand-build a pair whose columns decode to different lengths.
        let mut w = TsFileWriter::new();
        w.add_int_series("m/time", &[10, 20, 30], EncodingChoice::TS2DIFF_BP)
            .unwrap();
        w.add_int_series("m/value", &[1, 2], EncodingChoice::TS2DIFF_BP)
            .unwrap();
        let bytes = w.finish();
        let r = TsFileReader::open(&bytes).unwrap();
        assert_eq!(
            r.read_timed_salvage("m").unwrap(),
            TimedSalvage::Misaligned {
                times: vec![10, 20, 30],
                values: vec![1, 2],
            }
        );
    }

    #[test]
    fn parallel_series_writer_is_byte_identical() {
        let values: Vec<i64> = (0..9000)
            .map(|i| i * 5 + (i % 17) + if i % 211 == 0 { 1 << 30 } else { 0 })
            .collect();
        let mut seq = TsFileWriter::new();
        seq.add_int_series("s", &values, EncodingChoice::TS2DIFF_BOS)
            .unwrap();
        let seq_bytes = seq.finish();
        for threads in [1, 2, 4] {
            let mut par = TsFileWriter::new();
            par.add_int_series_parallel("s", &values, EncodingChoice::TS2DIFF_BOS, threads)
                .unwrap();
            assert_eq!(par.finish(), seq_bytes, "threads={threads}");
        }
    }

    #[test]
    fn salvage_of_garbage_never_panics() {
        for len in [0usize, 1, 7, 8, 64, 300] {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let (r, report) = TsFileReader::open_salvage(&junk);
            assert!(r.series().is_empty() || report.footer_rebuilt);
        }
    }
}
