//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Chunk payloads and the footer are checksummed so a reader can detect
//! torn writes and bit rot — the same integrity role TsFile's chunk
//! checksums play.

/// Reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let data = vec![0xA5u8; 1000];
        let base = crc32(&data);
        for i in (0..data.len()).step_by(97) {
            let mut corrupted = data.clone();
            corrupted[i] ^= 1;
            assert_ne!(crc32(&corrupted), base, "flip at {i} undetected");
        }
    }
}
