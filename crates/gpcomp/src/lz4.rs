//! LZ4-style byte compression (our own implementation of the LZ4 block
//! format; Collet 2013).
//!
//! Greedy LZ77 with a hash table over 4-byte prefixes and 16-bit offsets.
//! Sequence layout follows LZ4 blocks: a token byte holds
//! `literal_len(4b) | match_len−4 (4b)`, both extended with 255-run bytes,
//! then the literals, then a 2-byte little-endian offset. The final
//! sequence is literals-only.

use crate::ByteCodec;
use bitpack::error::{DecodeError, DecodeResult};
use bitpack::zigzag::{read_varint, write_varint};

/// Minimum match length (as in LZ4).
const MIN_MATCH: usize = 4;
/// Hash table size (2^16 entries).
const HASH_BITS: u32 = 16;
/// Maximum offset expressible in the 2-byte field.
const MAX_OFFSET: usize = 65_535;

/// The LZ4-style codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lz4Like;

impl Lz4Like {
    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }
}

#[inline]
fn hash4(data: &[u8]) -> usize {
    // Callers guarantee 4 bytes; a short slice hashes as zero.
    let v = match data.get(..4).map(<[u8; 4]>::try_from) {
        Some(Ok(b)) => u32::from_le_bytes(b),
        _ => 0,
    };
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Writes an LZ4 length field: `base` nibble already in the token, the
/// remainder as 255-run bytes.
fn write_len_ext(mut len: usize, out: &mut Vec<u8>) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

fn read_len_ext(buf: &[u8], pos: &mut usize) -> DecodeResult<usize> {
    let mut len = 0usize;
    loop {
        let b = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        len += b as usize;
        if b != 255 {
            return Ok(len);
        }
    }
}

impl ByteCodec for Lz4Like {
    fn name(&self) -> &'static str {
        "LZ4"
    }

    fn compress(&self, data: &[u8], out: &mut Vec<u8>) {
        write_varint(out, data.len() as u64);
        if data.is_empty() {
            return;
        }
        let mut table = vec![usize::MAX; 1 << HASH_BITS];
        let mut i = 0usize;
        let mut literal_start = 0usize;
        // Leave room so the 4-byte hash read never overruns.
        let end = data.len().saturating_sub(MIN_MATCH);
        while i < end {
            let h = hash4(data.get(i..).unwrap_or(&[]));
            let cand = table.get(h).copied().unwrap_or(usize::MAX);
            if let Some(slot) = table.get_mut(h) {
                *slot = i;
            }
            let matched = cand != usize::MAX
                && i - cand <= MAX_OFFSET
                && matches!(
                    (data.get(cand..cand + MIN_MATCH), data.get(i..i + MIN_MATCH)),
                    (Some(a), Some(b)) if a == b
                );
            if !matched {
                i += 1;
                continue;
            }
            // Extend the match.
            let mut mlen = MIN_MATCH;
            while i + mlen < data.len() && data.get(cand + mlen) == data.get(i + mlen) {
                mlen += 1;
            }
            // Emit sequence: literals [literal_start..i), match (offset, mlen).
            let lit_len = i - literal_start;
            let tok_lit = lit_len.min(15);
            let tok_match = (mlen - MIN_MATCH).min(15);
            out.push(((tok_lit as u8) << 4) | tok_match as u8);
            if tok_lit == 15 {
                write_len_ext(lit_len - 15, out);
            }
            out.extend_from_slice(data.get(literal_start..i).unwrap_or(&[]));
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            if tok_match == 15 {
                write_len_ext(mlen - MIN_MATCH - 15, out);
            }
            // Index a few positions inside the match for future matches.
            let step = (mlen / 8).max(1);
            let mut j = i + 1;
            while j + MIN_MATCH <= data.len() && j < i + mlen {
                let h = hash4(data.get(j..).unwrap_or(&[]));
                if let Some(slot) = table.get_mut(h) {
                    *slot = j;
                }
                j += step;
            }
            i += mlen;
            literal_start = i;
        }
        // Final literals-only sequence (omitted when a match ended the
        // stream exactly — the decoder stops at the target length).
        let lit_len = data.len() - literal_start;
        if lit_len > 0 {
            let tok_lit = lit_len.min(15);
            out.push((tok_lit as u8) << 4);
            if tok_lit == 15 {
                write_len_ext(lit_len - 15, out);
            }
            out.extend_from_slice(data.get(literal_start..).unwrap_or(&[]));
        }
    }

    fn decompress(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<u8>) -> DecodeResult<()> {
        let n = read_varint(buf, pos)? as usize;
        if n == 0 {
            return Ok(());
        }
        if n > bitpack::MAX_BLOCK_VALUES * 8 {
            return Err(DecodeError::CountOverflow { claimed: n as u64 });
        }
        let start = out.len();
        out.reserve(n);
        while out.len() - start < n {
            let token = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
            *pos += 1;
            let mut lit_len = (token >> 4) as usize;
            if lit_len == 15 {
                lit_len += read_len_ext(buf, pos)?;
            }
            let lits = buf
                .get(*pos..*pos + lit_len)
                .ok_or(DecodeError::Truncated)?;
            *pos += lit_len;
            out.extend_from_slice(lits);
            if out.len() - start == n {
                break; // final sequence has no match part
            }
            if out.len() - start > n {
                return Err(DecodeError::LengthMismatch {
                    expected: n,
                    got: out.len() - start,
                });
            }
            let off_bytes = buf.get(*pos..*pos + 2).ok_or(DecodeError::Truncated)?;
            *pos += 2;
            let offset = match <[u8; 2]>::try_from(off_bytes) {
                Ok(b) => u16::from_le_bytes(b) as usize,
                Err(_) => return Err(DecodeError::Truncated),
            };
            let mut mlen = (token & 0x0F) as usize;
            if mlen == 15 {
                mlen += read_len_ext(buf, pos)?;
            }
            mlen += MIN_MATCH;
            if offset == 0 || offset > out.len() - start {
                // A match may not reach back before this frame's output.
                return Err(DecodeError::CountOverflow {
                    claimed: offset as u64,
                });
            }
            if out.len() - start + mlen > n {
                return Err(DecodeError::LengthMismatch {
                    expected: n,
                    got: out.len() - start + mlen,
                });
            }
            // Overlapping copy, byte by byte (RLE-style matches).
            let from = out.len() - offset;
            for k in 0..mlen {
                let b = out.get(from + k).copied().ok_or(DecodeError::Truncated)?;
                out.push(b);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{roundtrip_bytes, standard_byte_cases};

    #[test]
    fn roundtrip_standard() {
        let codec = Lz4Like::new();
        for case in standard_byte_cases() {
            roundtrip_bytes(&codec, &case);
        }
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let codec = Lz4Like::new();
        let data: Vec<u8> = b"abcdefgh".iter().cycle().take(100_000).copied().collect();
        let size = roundtrip_bytes(&codec, &data);
        assert!(size < 1000, "got {size}");
    }

    #[test]
    fn overlapping_matches_rle_style() {
        // Single repeated byte → offset-1 overlapping copies.
        let codec = Lz4Like::new();
        let data = vec![7u8; 50_000];
        let size = roundtrip_bytes(&codec, &data);
        assert!(size < 300, "got {size}");
    }

    #[test]
    fn incompressible_data_expands_gracefully() {
        let codec = Lz4Like::new();
        // Pseudo-random bytes (xorshift) have no 4-byte repeats to speak of.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let size = roundtrip_bytes(&codec, &data);
        // Expansion bounded: token bytes every ≤ 15 literals plus header.
        assert!(size < data.len() + data.len() / 10 + 16);
    }

    #[test]
    fn long_range_matches_beyond_window_are_skipped() {
        // Two identical 1 KiB chunks 100 KiB apart: offset > 65535 must
        // not be emitted (correctness, not ratio).
        let mut data = vec![0u8; 102_400];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let chunk: Vec<u8> = (0..1024).map(|i| (i * 7 % 256) as u8).collect();
        data[..1024].copy_from_slice(&chunk);
        let tail = data.len() - 1024;
        data[tail..].copy_from_slice(&chunk);
        roundtrip_bytes(&Lz4Like::new(), &data);
    }

    #[test]
    fn truncation_fails_cleanly() {
        let codec = Lz4Like::new();
        let data: Vec<u8> = (0..5000).map(|i| (i % 37) as u8).collect();
        let mut buf = Vec::new();
        codec.compress(&data, &mut buf);
        for cut in (0..buf.len()).step_by(7) {
            let mut pos = 0;
            let mut out = Vec::new();
            assert!(codec.decompress(&buf[..cut], &mut pos, &mut out).is_err());
        }
    }
}
