//! Lossless transform coding: DCT-II and radix-2 FFT with integer
//! residual correction (the "DCT" and "FFT" comparators of Figure 13).
//!
//! Frequency transforms are lossy; the paper (§II-B) notes that lossless
//! use requires storing the residuals — and that BOS applies naturally to
//! those residuals, which concentrate near zero with outliers at signal
//! discontinuities ("BOS+DCT", "BOS+FFT").
//!
//! Scheme per block of [`BLOCK`] integers:
//! 1. transform the block (DCT-II or real FFT) in `f64`;
//! 2. quantize the coefficients to `i64` with a fixed step;
//! 3. reconstruct deterministically with the inverse transform and round;
//! 4. store quantized coefficients *and* the exact integer residuals with
//!    the chosen inner operator (BOS or plain BP — the with/without axis
//!    of Figure 13).
//!
//! Both ends run the same `f64` code on the same inputs, so the
//! reconstruction is bit-identical and the residual correction is exact.

use bitpack::error::{DecodeError, DecodeResult};
use bitpack::zigzag::{read_varint, write_varint};
use bos::{BosCodec, SolverKind};
use pfor::Codec as _;

/// Values per transform block.
pub const BLOCK: usize = 256;

/// Quantization step for coefficients: coarser → smaller coefficient
/// storage but larger residuals. One unit of signal precision works well
/// for the scaled-integer series of the experiments.
const Q_STEP: f64 = 4.0;

/// Which frequency transform to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// Type-II discrete cosine transform.
    Dct,
    /// Radix-2 real FFT (interleaved real/imaginary half-spectrum).
    Fft,
}

/// The inner operator storing coefficients and residuals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerPacker {
    /// Plain bit-packing ("without BOS").
    Bp,
    /// BOS with the exact bit-width solver ("with BOS").
    BosB,
}

/// A lossless transform codec over `i64` series.
#[derive(Debug, Clone, Copy)]
pub struct TransformCodec {
    /// The transform.
    pub kind: TransformKind,
    /// The inner operator.
    pub packer: InnerPacker,
}

impl TransformCodec {
    /// Creates a codec.
    pub fn new(kind: TransformKind, packer: InnerPacker) -> Self {
        Self { kind, packer }
    }

    /// Label like "DCT", "BOS+DCT".
    pub fn label(&self) -> String {
        let base = match self.kind {
            TransformKind::Dct => "DCT",
            TransformKind::Fft => "FFT",
        };
        match self.packer {
            InnerPacker::Bp => base.to_string(),
            InnerPacker::BosB => format!("BOS+{base}"),
        }
    }

    fn pack(&self, values: &[i64], out: &mut Vec<u8>) {
        match self.packer {
            InnerPacker::Bp => pfor::BpCodec::new().encode(values, out),
            InnerPacker::BosB => BosCodec::new(SolverKind::BitWidth).encode(values, out),
        }
    }

    fn unpack(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
        // Both operators write self-describing blocks decodable by their
        // own decoders; dispatch on the packer we were built with.
        match self.packer {
            InnerPacker::Bp => pfor::BpCodec::new().decode(buf, pos, out),
            InnerPacker::BosB => bos::decode(buf, pos, out),
        }
    }

    /// Encodes a series.
    pub fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
        write_varint(out, values.len() as u64);
        for block in values.chunks(BLOCK) {
            let signal: Vec<f64> = block.iter().map(|&v| v as f64).collect();
            let coeffs = match self.kind {
                TransformKind::Dct => dct2(&signal),
                TransformKind::Fft => rfft(&signal),
            };
            let quantized: Vec<i64> = coeffs
                .iter()
                .map(|&c| (c / Q_STEP).round() as i64)
                .collect();
            let recon = self.reconstruct(&quantized, block.len());
            let residuals: Vec<i64> = block
                .iter()
                .zip(&recon)
                .map(|(&x, &r)| x.wrapping_sub(r))
                .collect();
            self.pack(&quantized, out);
            self.pack(&residuals, out);
        }
    }

    fn reconstruct(&self, quantized: &[i64], len: usize) -> Vec<i64> {
        let dequant: Vec<f64> = quantized.iter().map(|&q| q as f64 * Q_STEP).collect();
        let recon = match self.kind {
            TransformKind::Dct => idct2(&dequant),
            TransformKind::Fft => irfft(&dequant, len),
        };
        recon.iter().map(|&r| r.round() as i64).collect()
    }

    /// Decodes a series.
    pub fn decode(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<i64>) -> DecodeResult<()> {
        let n = read_varint(buf, pos)? as usize;
        if n > bitpack::MAX_BLOCK_VALUES {
            return Err(DecodeError::CountOverflow { claimed: n as u64 });
        }
        out.reserve(n);
        let mut produced = 0usize;
        while produced < n {
            let len = (n - produced).min(BLOCK);
            let mut quantized = Vec::new();
            self.unpack(buf, pos, &mut quantized)?;
            let mut residuals = Vec::new();
            self.unpack(buf, pos, &mut residuals)?;
            if residuals.len() != len {
                return Err(DecodeError::LengthMismatch {
                    expected: len,
                    got: residuals.len(),
                });
            }
            let recon = self.reconstruct(&quantized, len);
            if recon.len() != len {
                return Err(DecodeError::LengthMismatch {
                    expected: len,
                    got: recon.len(),
                });
            }
            for (r, d) in recon.iter().zip(&residuals) {
                out.push(r.wrapping_add(*d));
            }
            produced += len;
        }
        Ok(())
    }
}

/// DCT-II (the classic "DCT"), direct O(n²) form — blocks are small.
fn dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let scale = std::f64::consts::PI / n as f64;
    (0..n)
        .map(|k| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| v * ((i as f64 + 0.5) * k as f64 * scale).cos())
                .sum::<f64>()
                * (2.0 / n as f64)
        })
        .collect()
}

/// Inverse of [`dct2`] (DCT-III with the matching normalization).
fn idct2(c: &[f64]) -> Vec<f64> {
    let n = c.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = std::f64::consts::PI / n as f64;
    (0..n)
        .map(|i| {
            c[0] / 2.0
                + (1..n)
                    .map(|k| c[k] * ((i as f64 + 0.5) * k as f64 * scale).cos())
                    .sum::<f64>()
        })
        .collect()
}

/// Real FFT: pads to the next power of two, returns interleaved
/// `[re0, im0, re1, im1, …]` for the half-spectrum `0..=N/2`.
fn rfft(x: &[f64]) -> Vec<f64> {
    let n = x.len().next_power_of_two().max(2);
    let mut re: Vec<f64> = x.to_vec();
    re.resize(n, *x.last().unwrap_or(&0.0)); // pad with the edge value
    let mut im = vec![0.0f64; n];
    fft_in_place(&mut re, &mut im, false);
    let mut out = Vec::with_capacity(n + 2);
    for k in 0..=n / 2 {
        out.push(re[k]);
        out.push(im[k]);
    }
    out
}

/// Inverse of [`rfft`], truncating back to `len` samples.
fn irfft(half: &[f64], len: usize) -> Vec<f64> {
    if len == 0 {
        return Vec::new();
    }
    let n = len.next_power_of_two().max(2);
    let mut re = vec![0.0f64; n];
    let mut im = vec![0.0f64; n];
    for k in 0..=n / 2 {
        let (r, i) = (
            half.get(2 * k).copied().unwrap_or(0.0),
            half.get(2 * k + 1).copied().unwrap_or(0.0),
        );
        re[k] = r;
        im[k] = i;
        if k != 0 && k != n / 2 {
            re[n - k] = r;
            im[n - k] = -i; // hermitian symmetry of a real signal
        }
    }
    fft_in_place(&mut re, &mut im, true);
    re.truncate(len);
    re
}

/// Iterative radix-2 Cooley–Tukey FFT. `inverse` includes the 1/N factor.
fn fft_in_place(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = (re[i + k], im[i + k]);
                let (br, bi) = (re[i + k + len / 2], im[i + k + len / 2]);
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                re[i + k] = ar + tr;
                im[i + k] = ai + ti;
                re[i + k + len / 2] = ar - tr;
                im[i + k + len / 2] = ai - ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in re.iter_mut() {
            *v *= inv;
        }
        for v in im.iter_mut() {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &TransformCodec, values: &[i64]) -> usize {
        let mut buf = Vec::new();
        codec.encode(values, &mut buf);
        let mut pos = 0;
        let mut out = Vec::new();
        codec.decode(&buf, &mut pos, &mut out).expect("decode");
        assert_eq!(out, values, "{}", codec.label());
        assert_eq!(pos, buf.len());
        buf.len()
    }

    fn smooth_signal(n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.05;
                (1000.0 * t.sin() + 400.0 * (3.1 * t).cos() + 5000.0).round() as i64
            })
            .collect()
    }

    #[test]
    fn dct_identity() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() * 100.0).collect();
        let c = dct2(&x);
        let back = idct2(&c);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn fft_identity() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.211).cos() * 50.0).collect();
        let h = rfft(&x);
        let back = irfft(&h, x.len());
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_all_variants() {
        let values = smooth_signal(1000);
        for kind in [TransformKind::Dct, TransformKind::Fft] {
            for packer in [InnerPacker::Bp, InnerPacker::BosB] {
                roundtrip(&TransformCodec::new(kind, packer), &values);
            }
        }
    }

    #[test]
    fn roundtrip_edges() {
        for kind in [TransformKind::Dct, TransformKind::Fft] {
            let c = TransformCodec::new(kind, InnerPacker::BosB);
            roundtrip(&c, &[]);
            roundtrip(&c, &[5]);
            roundtrip(&c, &[5, -5]);
            roundtrip(&c, &vec![1_000_000; 300]);
            roundtrip(&c, &(0..257).collect::<Vec<i64>>());
        }
    }

    #[test]
    fn noisy_spikes_still_roundtrip() {
        let mut values = smooth_signal(512);
        values[100] += 1 << 30;
        values[200] -= 1 << 28;
        for kind in [TransformKind::Dct, TransformKind::Fft] {
            roundtrip(&TransformCodec::new(kind, InnerPacker::BosB), &values);
        }
    }

    #[test]
    fn bos_residuals_not_larger_than_bp() {
        // Residuals concentrate near zero with spikes at discontinuities —
        // BOS's favourable regime.
        let mut values = smooth_signal(4096);
        for i in (0..values.len()).step_by(300) {
            values[i] += 200_000;
        }
        let with_bos = roundtrip(
            &TransformCodec::new(TransformKind::Dct, InnerPacker::BosB),
            &values,
        );
        let without = roundtrip(
            &TransformCodec::new(TransformKind::Dct, InnerPacker::Bp),
            &values,
        );
        assert!(with_bos <= without, "{with_bos} vs {without}");
    }

    #[test]
    fn labels() {
        assert_eq!(
            TransformCodec::new(TransformKind::Dct, InnerPacker::Bp).label(),
            "DCT"
        );
        assert_eq!(
            TransformCodec::new(TransformKind::Fft, InnerPacker::BosB).label(),
            "BOS+FFT"
        );
    }
}
