//! LZMA-lite: LZ77 with an adaptive binary range coder — the stand-in for
//! 7-Zip in the Figure 13 experiment (DESIGN.md §2, substitution 2).
//!
//! The same algorithmic family as LZMA: dictionary matching plus range
//! coding with adaptive bit probabilities. The model is deliberately small
//! (order-1 literals, fixed-width length/distance trees) — enough to
//! reproduce 7-Zip's *position* in the trade-off space (strongest ratio,
//! slowest speed) without porting the full LZMA state machine.
//!
//! Range coder: LZMA's 32-bit carry-less coder (11-bit probabilities,
//! shift-5 adaptation).

use crate::ByteCodec;
use bitpack::error::{DecodeError, DecodeResult};
use bitpack::zigzag::{read_varint, write_varint};

/// Probability precision (LZMA uses 11 bits).
const PROB_BITS: u32 = 11;
const PROB_ONE: u16 = 1 << PROB_BITS;
const PROB_INIT: u16 = PROB_ONE / 2;
/// Adaptation shift.
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// Carry-less range encoder.
struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl RangeEncoder {
    fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        // Reference LZMA carry propagation: flush the cached byte (plus
        // carry) and any pending 0xFF run once the top byte is decided.
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            loop {
                self.out.push(self.cache.wrapping_add(carry));
                self.cache = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low & 0x00FF_FFFF) << 8;
    }

    #[inline]
    fn encode_bit(&mut self, prob: &mut u16, bit: bool) {
        let bound = (self.range >> PROB_BITS) * (*prob as u32);
        if !bit {
            self.range = bound;
            *prob += (PROB_ONE - *prob) >> MOVE_BITS;
        } else {
            self.low += bound as u64;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Matching range decoder.
struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    fn new(buf: &'a [u8]) -> DecodeResult<Self> {
        // The first output byte of the encoder is always the initial cache
        // (0); then 4 code bytes.
        let mut code = 0u32;
        for &b in buf.get(1..5).ok_or(DecodeError::Truncated)? {
            code = (code << 8) | b as u32;
        }
        Ok(Self {
            code,
            range: u32::MAX,
            buf,
            pos: 5,
        })
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zero bytes; corruption is caught by
        // the structural checks of the caller.
        let b = self.buf.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    #[inline]
    fn decode_bit(&mut self, prob: &mut u16) -> bool {
        let bound = (self.range >> PROB_BITS) * (*prob as u32);
        let bit = if self.code < bound {
            self.range = bound;
            *prob += (PROB_ONE - *prob) >> MOVE_BITS;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
            true
        };
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }
}

/// A binary tree of adaptive probabilities coding fixed-width fields
/// MSB-first.
struct BitTree {
    probs: Vec<u16>,
    bits: u32,
}

impl BitTree {
    fn new(bits: u32) -> Self {
        Self {
            probs: vec![PROB_INIT; 1 << bits],
            bits,
        }
    }

    fn encode(&mut self, enc: &mut RangeEncoder, value: u32) {
        let mut node = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (value >> i) & 1 == 1;
            enc.encode_bit(&mut self.probs[node], bit);
            node = (node << 1) | bit as usize;
        }
    }

    fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let mut node = 1usize;
        for _ in 0..self.bits {
            let bit = dec.decode_bit(&mut self.probs[node]);
            node = (node << 1) | bit as usize;
        }
        (node - (1 << self.bits)) as u32
    }
}

/// The shared literal/match model.
struct Model {
    is_match: u16,
    /// Order-1 literal coder: one 8-bit tree per previous byte.
    literals: Vec<BitTree>,
    len: BitTree,
    dist: BitTree,
}

impl Model {
    fn new() -> Self {
        Self {
            is_match: PROB_INIT,
            literals: (0..256).map(|_| BitTree::new(8)).collect(),
            len: BitTree::new(16),
            dist: BitTree::new(16),
        }
    }
}

/// Minimum profitable match length.
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 65_535;
const MAX_DIST: usize = 65_535;
const HASH_BITS: u32 = 16;

#[inline]
fn hash3(data: &[u8]) -> usize {
    let v = (data[0] as u32) | ((data[1] as u32) << 8) | ((data[2] as u32) << 16);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// The LZMA-lite codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct LzmaLite;

impl LzmaLite {
    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }
}

impl ByteCodec for LzmaLite {
    fn name(&self) -> &'static str {
        "7-Zip (LZMA-lite)"
    }

    fn compress(&self, data: &[u8], out: &mut Vec<u8>) {
        write_varint(out, data.len() as u64);
        if data.is_empty() {
            return;
        }
        let mut model = Model::new();
        let mut enc = RangeEncoder::new();
        let mut table = vec![usize::MAX; 1 << HASH_BITS];
        let mut i = 0usize;
        let mut prev_byte = 0u8;
        while i < data.len() {
            let mut mlen = 0usize;
            let mut mdist = 0usize;
            if i + MIN_MATCH <= data.len() {
                let h = hash3(&data[i..]);
                let cand = table[h];
                table[h] = i;
                if cand != usize::MAX
                    && i - cand <= MAX_DIST
                    && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH]
                {
                    let mut l = MIN_MATCH;
                    while i + l < data.len() && data[cand + l] == data[i + l] && l < MAX_MATCH {
                        l += 1;
                    }
                    mlen = l;
                    mdist = i - cand;
                }
            }
            if mlen >= MIN_MATCH {
                enc.encode_bit(&mut model.is_match, true);
                model.len.encode(&mut enc, mlen as u32);
                model.dist.encode(&mut enc, mdist as u32);
                // Index interior positions sparsely.
                let step = (mlen / 8).max(1);
                let mut j = i + 1;
                while j + MIN_MATCH <= data.len() && j < i + mlen {
                    table[hash3(&data[j..])] = j;
                    j += step;
                }
                i += mlen;
                prev_byte = data[i - 1];
            } else {
                enc.encode_bit(&mut model.is_match, false);
                model.literals[prev_byte as usize].encode(&mut enc, data[i] as u32);
                prev_byte = data[i];
                i += 1;
            }
        }
        let payload = enc.finish();
        write_varint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }

    fn decompress(&self, buf: &[u8], pos: &mut usize, out: &mut Vec<u8>) -> DecodeResult<()> {
        let n = read_varint(buf, pos)? as usize;
        if n == 0 {
            return Ok(());
        }
        if n > bitpack::MAX_BLOCK_VALUES * 8 {
            return Err(DecodeError::CountOverflow { claimed: n as u64 });
        }
        let plen = read_varint(buf, pos)? as usize;
        let payload = buf.get(*pos..*pos + plen).ok_or(DecodeError::Truncated)?;
        *pos += plen;
        let mut model = Model::new();
        let mut dec = RangeDecoder::new(payload)?;
        let start = out.len();
        out.reserve(n);
        let mut prev_byte = 0u8;
        while out.len() - start < n {
            if dec.decode_bit(&mut model.is_match) {
                let mlen = model.len.decode(&mut dec) as usize;
                let mdist = model.dist.decode(&mut dec) as usize;
                if mlen < MIN_MATCH || mdist == 0 || mdist > out.len() - start {
                    return Err(DecodeError::CountOverflow {
                        claimed: mdist as u64,
                    });
                }
                if out.len() - start + mlen > n {
                    return Err(DecodeError::LengthMismatch {
                        expected: n,
                        got: out.len() - start + mlen,
                    });
                }
                let from = out.len() - mdist;
                for k in 0..mlen {
                    let b = out.get(from + k).copied().ok_or(DecodeError::Truncated)?;
                    out.push(b);
                }
                prev_byte = out.last().copied().unwrap_or(0);
            } else {
                let tree = model
                    .literals
                    .get_mut(prev_byte as usize)
                    .ok_or(DecodeError::Truncated)?;
                let b = tree.decode(&mut dec) as u8;
                out.push(b);
                prev_byte = b;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{roundtrip_bytes, standard_byte_cases};

    #[test]
    fn roundtrip_standard() {
        let codec = LzmaLite::new();
        for case in standard_byte_cases() {
            roundtrip_bytes(&codec, &case);
        }
    }

    #[test]
    fn beats_lz4_on_biased_bytes() {
        // Skewed byte distribution with mild repetition: entropy coding
        // should beat pure LZ77.
        let mut x = 99u64;
        let data: Vec<u8> = (0..60_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Heavily biased: mostly a few symbols.
                match (x >> 60) & 0xF {
                    0..=9 => b'a',
                    10..=12 => b'b',
                    13..=14 => b'c',
                    _ => (x >> 32) as u8,
                }
            })
            .collect();
        let lzma = roundtrip_bytes(&LzmaLite::new(), &data);
        let lz4 = roundtrip_bytes(&crate::Lz4Like::new(), &data);
        assert!(lzma < lz4, "lzma {lzma} vs lz4 {lz4}");
    }

    #[test]
    fn constant_data_is_tiny() {
        let size = roundtrip_bytes(&LzmaLite::new(), &vec![42u8; 100_000]);
        assert!(size < 600, "got {size}");
    }

    #[test]
    fn adaptive_probabilities_converge() {
        // Alternating pattern should approach ~0 bits per symbol pair.
        let data: Vec<u8> = (0..40_000)
            .map(|i| if i % 2 == 0 { 1 } else { 2 })
            .collect();
        let size = roundtrip_bytes(&LzmaLite::new(), &data);
        assert!(size < 800, "got {size}");
    }

    #[test]
    fn short_inputs() {
        for len in 0..20 {
            let data: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(17)).collect();
            roundtrip_bytes(&LzmaLite::new(), &data);
        }
    }
}
