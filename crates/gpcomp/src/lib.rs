//! General-purpose comparators for the Figure 13 experiment.
//!
//! BOS is *complementary* to byte-stream and frequency-domain compressors
//! (§II-B of the paper): LZ4/7-Zip can run over BOS-encoded bytes
//! ("BOS+LZ4", "BOS+7-Zip"), and BOS can store the residuals of DCT/FFT
//! transform coding ("BOS+DCT", "BOS+FFT"). This crate provides all four
//! comparators, built from scratch:
//!
//! * [`lz4::Lz4Like`] — the LZ4 block format (hash-table LZ77).
//! * [`lzma_lite::LzmaLite`] — LZ77 + adaptive binary range coder, the
//!   stand-in for 7-Zip/LZMA (DESIGN.md §2, substitution 2).
//! * [`transform::TransformCodec`] — lossless DCT-II / radix-2 FFT coding
//!   with integer residual correction, parameterized by BP or BOS.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lz4;
pub mod lzma_lite;
pub mod transform;

pub use lz4::Lz4Like;
pub use lzma_lite::LzmaLite;
pub use transform::{InnerPacker, TransformCodec, TransformKind};

/// A general-purpose byte-stream compressor.
pub trait ByteCodec {
    /// Method label ("LZ4", "7-Zip (LZMA-lite)").
    fn name(&self) -> &'static str;

    /// Appends one compressed frame to `out`.
    fn compress(&self, data: &[u8], out: &mut Vec<u8>);

    /// Decompresses one frame from `buf[*pos..]`, appending bytes to
    /// `out`. Returns `Err(`[`bitpack::DecodeError`]`)` on corrupt or
    /// truncated input; never panics.
    fn decompress(
        &self,
        buf: &[u8],
        pos: &mut usize,
        out: &mut Vec<u8>,
    ) -> bitpack::DecodeResult<()>;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::ByteCodec;

    /// Roundtrips bytes; returns compressed size.
    pub fn roundtrip_bytes<C: ByteCodec>(codec: &C, data: &[u8]) -> usize {
        let mut buf = Vec::new();
        codec.compress(data, &mut buf);
        let mut pos = 0;
        let mut out = Vec::new();
        codec
            .decompress(&buf, &mut pos, &mut out)
            .unwrap_or_else(|e| panic!("{} decode failed: {e}", codec.name()));
        assert_eq!(out, data, "{} roundtrip mismatch", codec.name());
        assert_eq!(pos, buf.len(), "{} trailing bytes", codec.name());
        buf.len()
    }

    /// Adversarial byte blocks.
    pub fn standard_byte_cases() -> Vec<Vec<u8>> {
        let mut cases = vec![
            vec![],
            vec![0],
            vec![0xFF; 3],
            b"hello hello hello hello hello".to_vec(),
            (0..=255u8).collect(),
            (0..10_000).map(|i| (i % 256) as u8).collect(),
            vec![0u8; 70_000],
        ];
        // Structured "encoded block" bytes: headers + packed payloads.
        let mut structured = Vec::new();
        for i in 0..3000u32 {
            structured.extend_from_slice(&(i % 97).to_le_bytes());
        }
        cases.push(structured);
        cases
    }
}
