//! Property-based roundtrips for the general-purpose comparators.

use gpcomp::{ByteCodec, InnerPacker, Lz4Like, LzmaLite, TransformCodec, TransformKind};
use proptest::prelude::*;

fn byte_codecs() -> Vec<Box<dyn ByteCodec>> {
    vec![Box::new(Lz4Like::new()), Box::new(LzmaLite::new())]
}

fn roundtrip_bytes(codec: &dyn ByteCodec, data: &[u8]) {
    let mut buf = Vec::new();
    codec.compress(data, &mut buf);
    let mut pos = 0;
    let mut out = Vec::new();
    codec
        .decompress(&buf, &mut pos, &mut out)
        .unwrap_or_else(|_e| panic!("{} decode failed", codec.name()));
    assert_eq!(out, data, "{}", codec.name());
    assert_eq!(pos, buf.len(), "{}", codec.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bytes_roundtrip_random(data in prop::collection::vec(any::<u8>(), 0..5000)) {
        for codec in byte_codecs() {
            roundtrip_bytes(codec.as_ref(), &data);
        }
    }

    #[test]
    fn bytes_roundtrip_repetitive(
        seedlen in 1usize..40,
        reps in 1usize..200,
        seed in prop::collection::vec(any::<u8>(), 1..40)
    ) {
        let pattern = &seed[..seedlen.min(seed.len())];
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * reps).copied().collect();
        for codec in byte_codecs() {
            roundtrip_bytes(codec.as_ref(), &data);
        }
    }

    #[test]
    fn bytes_random_input_never_panics(data in prop::collection::vec(any::<u8>(), 0..400)) {
        for codec in byte_codecs() {
            let mut pos = 0;
            let mut out = Vec::new();
            let _ = codec.decompress(&data, &mut pos, &mut out);
        }
    }

    #[test]
    fn transforms_roundtrip(values in prop::collection::vec(-1_000_000i64..1_000_000, 0..600)) {
        for kind in [TransformKind::Dct, TransformKind::Fft] {
            for packer in [InnerPacker::Bp, InnerPacker::BosB] {
                let codec = TransformCodec::new(kind, packer);
                let mut buf = Vec::new();
                codec.encode(&values, &mut buf);
                let mut pos = 0;
                let mut out = Vec::new();
                prop_assert!(codec.decode(&buf, &mut pos, &mut out).is_ok());
                prop_assert_eq!(&out, &values, "{}", codec.label());
            }
        }
    }

    #[test]
    fn transforms_roundtrip_big_magnitudes(values in prop::collection::vec(-(1i64 << 40)..(1i64 << 40), 0..300)) {
        let codec = TransformCodec::new(TransformKind::Dct, InnerPacker::BosB);
        let mut buf = Vec::new();
        codec.encode(&values, &mut buf);
        let mut pos = 0;
        let mut out = Vec::new();
        prop_assert!(codec.decode(&buf, &mut pos, &mut out).is_ok());
        prop_assert_eq!(out, values);
    }
}
