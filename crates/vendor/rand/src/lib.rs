//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seedable
//! generator ([`rngs::StdRng`]), the [`SeedableRng`] constructor, and the
//! [`Rng`] sampling methods (`gen`, `gen_range`, `gen_bool`). The generator
//! is xoshiro256** seeded through SplitMix64 — statistically strong enough
//! for synthetic data generation and deterministic across platforms, which
//! is all the `datasets` crate needs.
//!
//! This is NOT a cryptographic RNG and makes no stability promise about the
//! exact stream matching upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A seedable pseudo-random generator (xoshiro256**).
    ///
    /// Stand-in for `rand::rngs::StdRng`; deterministic given a seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seed-based construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // All-zero state is the one forbidden xoshiro state; seed 0 via
        // SplitMix64 never produces it, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        StdRng { s }
    }
}

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A type that [`Rng::gen`] can produce from uniform random bits.
pub trait Standard: Sized {
    /// Samples one value from the generator's next bits.
    fn from_rng(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation)]
            fn from_rng(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the `rand` convention).
    #[inline]
    fn from_rng(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                // Unbiased enough for synthetic data: 64-bit modulo of a
                // full-width draw; bias is < 2^-32 for the spans used here.
                let draw = if span == 0 { rng.next_u64() as $u } else { (rng.next_u64() as $u) % span };
                (self.start as $u).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                let draw = if span == 0 { rng.next_u64() as $u } else { (rng.next_u64() as $u) % span };
                (start as $u).wrapping_add(draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Samples a value of type `T` from uniform random bits.
    fn gen<T: Standard>(&mut self) -> T;
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::from_rng(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: u32 = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&u));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
