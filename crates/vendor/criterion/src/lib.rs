//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups, `Throughput`,
//! `BenchmarkId`, and `Bencher::iter` — with plain wall-clock timing and a
//! median-of-samples report printed to stdout. No statistical regression
//! analysis, no HTML reports, no command-line filtering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units processed per iteration, used to derive a rate in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// A `function-name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take (upstream default is 100; this
    /// stub defaults to 10 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`, which receives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (upstream writes reports here; the stub prints as it
    /// goes, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let median = b.median_iter_time();
        let rate = match (self.throughput, median) {
            (Some(Throughput::Bytes(n)), Some(t)) if t > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / t / (1024.0 * 1024.0))
            }
            (Some(Throughput::Elements(n)), Some(t)) if t > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / t / 1.0e6)
            }
            _ => String::new(),
        };
        match median {
            Some(t) => println!(
                "bench {:<40} {:>12.3} µs/iter{rate}",
                format!("{}/{}", self.name, id),
                t * 1.0e6
            ),
            None => println!("bench {:<40} (no samples)", format!("{}/{}", self.name, id)),
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Runs `f` repeatedly, recording wall-clock samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for samples of at least ~2ms so Instant resolution
        // doesn't dominate, capped to keep total time bounded.
        let probe = Instant::now();
        std_black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / iters as f64);
        }
    }

    fn median_iter_time(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        Some(sorted[sorted.len() / 2])
    }
}

/// Declares the function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(64));
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 64u64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
