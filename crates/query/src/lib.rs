//! Mini scan/aggregate engine over BOS-compressed block streams.
//!
//! Figure 11 of the paper argues BOS's storage saving translates into
//! query-time IO savings. This crate shows the *other* query-side benefit
//! of the Section-VII layout: the block header carries the exact minimum
//! and tight width information, so a scanner can build zone maps and
//! answer range predicates while **skipping whole blocks without decoding
//! them** ([`bos::format::peek_block`]).
//!
//! ```
//! use bos::stream::StreamEncoder;
//! use bos::SolverKind;
//! use query::Scanner;
//!
//! let values: Vec<i64> = (0..100_000).map(|i| i % 1000).collect();
//! let mut stream = Vec::new();
//! StreamEncoder::new(SolverKind::BitWidth, 1024).encode(&values, &mut stream);
//!
//! let scanner = Scanner::open(&stream).unwrap();
//! assert_eq!(scanner.count_in_range(100, 199).unwrap(), 10_000);
//! assert_eq!(scanner.min().unwrap(), Some(0)); // header-only, zero decode
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use bitpack::error::DecodeError;
use bitpack::zigzag::read_varint;
use bos::format::{decode_block, peek_block, BlockSummary};

/// Errors from the scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The stream is structurally invalid (a zone-map-level check failed).
    Corrupt,
    /// A block failed to decode; carries the typed decoder error.
    Decode(DecodeError),
}

impl From<DecodeError> for QueryError {
    fn from(e: DecodeError) -> Self {
        QueryError::Decode(e)
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Corrupt => write!(f, "corrupt block stream"),
            QueryError::Decode(e) => write!(f, "corrupt block stream: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Zone-map entry: a block's summary plus its byte offset.
#[derive(Debug, Clone, Copy)]
struct Zone {
    summary: BlockSummary,
    offset: usize,
}

/// Execution counters, exposed so tests and experiments can verify that
/// skipping actually skips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Blocks whose payload was decoded.
    pub blocks_decoded: usize,
    /// Blocks answered from the header alone.
    pub blocks_skipped: usize,
}

/// A scanner over one `bos::stream` block stream.
pub struct Scanner<'a> {
    data: &'a [u8],
    zones: Vec<Zone>,
}

impl<'a> Scanner<'a> {
    /// Builds the zone map by peeking every block header (no payload
    /// decoding).
    pub fn open(stream: &'a [u8]) -> Result<Self, QueryError> {
        let mut pos = 0usize;
        let n_blocks = read_varint(stream, &mut pos)? as usize;
        if n_blocks > stream.len() + 1 {
            return Err(QueryError::Corrupt);
        }
        let mut zones = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let offset = pos;
            let summary = peek_block(stream, &mut pos)?;
            zones.push(Zone { summary, offset });
        }
        Ok(Self {
            data: stream,
            zones,
        })
    }

    /// Number of blocks in the stream.
    pub fn num_blocks(&self) -> usize {
        self.zones.len()
    }

    /// Total number of values (header-only).
    pub fn len(&self) -> usize {
        self.zones.iter().map(|z| z.summary.n).sum()
    }

    /// True when the stream holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn decode_zone(&self, zone: &Zone, out: &mut Vec<i64>) -> Result<(), QueryError> {
        let mut pos = zone.offset;
        decode_block(self.data, &mut pos, out)?;
        Ok(())
    }

    /// Exact global minimum — header-only, O(#blocks), zero decoding
    /// (the Section-VII layout stores each block's minimum verbatim).
    pub fn min(&self) -> Result<Option<i64>, QueryError> {
        Ok(self
            .zones
            .iter()
            .filter_map(|z| z.summary.bounds.map(|(lo, _)| lo))
            .min())
    }

    /// Exact global maximum: decodes only blocks whose max *bound* can
    /// still beat the best exact maximum seen so far.
    pub fn max(&self) -> Result<(Option<i64>, ScanStats), QueryError> {
        let mut order: Vec<&Zone> = self.zones.iter().filter(|z| z.summary.n > 0).collect();
        order.sort_by_key(|z| std::cmp::Reverse(z.summary.bounds.map(|(_, hi)| hi)));
        let mut stats = ScanStats::default();
        let mut best: Option<i64> = None;
        let mut scratch = Vec::new();
        for zone in order {
            // `order` holds only `n > 0` zones, whose bounds are present.
            let Some((_, hi)) = zone.summary.bounds else {
                stats.blocks_skipped += 1;
                continue;
            };
            if best.is_some_and(|b| hi <= b) {
                stats.blocks_skipped += 1;
                continue;
            }
            scratch.clear();
            self.decode_zone(zone, &mut scratch)?;
            stats.blocks_decoded += 1;
            let block_max = scratch.iter().copied().max().ok_or(QueryError::Decode(
                DecodeError::LengthMismatch {
                    expected: zone.summary.n,
                    got: 0,
                },
            ))?;
            best = Some(best.map_or(block_max, |b| b.max(block_max)));
        }
        Ok((best, stats))
    }

    /// Sum of all values (decodes everything; sums in i128 to avoid
    /// overflow).
    pub fn sum(&self) -> Result<i128, QueryError> {
        let mut total = 0i128;
        let mut scratch = Vec::new();
        for zone in &self.zones {
            scratch.clear();
            self.decode_zone(zone, &mut scratch)?;
            total += scratch.iter().map(|&v| v as i128).sum::<i128>();
        }
        Ok(total)
    }

    /// Counts values in `[lo, hi]` (inclusive), skipping blocks whose zone
    /// bounds prove the answer.
    pub fn count_in_range(&self, lo: i64, hi: i64) -> Result<usize, QueryError> {
        Ok(self.count_in_range_with_stats(lo, hi)?.0)
    }

    /// [`count_in_range`](Self::count_in_range) plus skip statistics.
    pub fn count_in_range_with_stats(
        &self,
        lo: i64,
        hi: i64,
    ) -> Result<(usize, ScanStats), QueryError> {
        let mut stats = ScanStats::default();
        let mut count = 0usize;
        let mut scratch = Vec::new();
        for zone in &self.zones {
            let Some((zmin, zmax_bound)) = zone.summary.bounds else {
                stats.blocks_skipped += 1;
                continue;
            };
            // Disjoint: zone entirely outside the predicate.
            // (zmin is exact; zmax_bound over-approximates, so only the
            // "entirely above" test may decode unnecessarily — never
            // incorrectly.)
            if zmin > hi || zmax_bound < lo {
                stats.blocks_skipped += 1;
                continue;
            }
            // Fully contained: bound inside [lo, hi] proves every value is.
            if zmin >= lo && zmax_bound <= hi {
                count = count.saturating_add(zone.summary.n);
                stats.blocks_skipped += 1;
                continue;
            }
            scratch.clear();
            self.decode_zone(zone, &mut scratch)?;
            stats.blocks_decoded += 1;
            count = count.saturating_add(scratch.iter().filter(|&&v| v >= lo && v <= hi).count());
        }
        Ok((count, stats))
    }

    /// Materializes the values in `[lo, hi]` (in stream order), with block
    /// skipping for disjoint zones.
    pub fn filter_range(&self, lo: i64, hi: i64) -> Result<(Vec<i64>, ScanStats), QueryError> {
        let mut stats = ScanStats::default();
        let mut result = Vec::new();
        let mut scratch = Vec::new();
        for zone in &self.zones {
            let Some((zmin, zmax_bound)) = zone.summary.bounds else {
                stats.blocks_skipped += 1;
                continue;
            };
            if zmin > hi || zmax_bound < lo {
                stats.blocks_skipped += 1;
                continue;
            }
            scratch.clear();
            self.decode_zone(zone, &mut scratch)?;
            stats.blocks_decoded += 1;
            result.extend(scratch.iter().copied().filter(|&v| v >= lo && v <= hi));
        }
        Ok((result, stats))
    }

    /// Decodes the full series (reference path, no skipping).
    pub fn materialize(&self) -> Result<Vec<i64>, QueryError> {
        let mut out = Vec::with_capacity(self.len());
        for zone in &self.zones {
            self.decode_zone(zone, &mut out)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bos::stream::StreamEncoder;
    use bos::SolverKind;

    fn stream_of(values: &[i64], block: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        StreamEncoder::new(SolverKind::BitWidth, block).encode(values, &mut buf);
        buf
    }

    /// Clustered values so different blocks cover different ranges.
    fn clustered() -> Vec<i64> {
        let mut v = Vec::new();
        for c in 0..10i64 {
            for i in 0..1000i64 {
                v.push(c * 10_000 + (i % 500));
            }
        }
        v
    }

    #[test]
    fn count_matches_reference() {
        let values = clustered();
        let stream = stream_of(&values, 1024);
        let scanner = Scanner::open(&stream).unwrap();
        for (lo, hi) in [
            (0, 400),
            (25_000, 45_000),
            (i64::MIN, i64::MAX),
            (7, 7),
            (99, 3),
        ] {
            let expected = values.iter().filter(|&&v| v >= lo && v <= hi).count();
            assert_eq!(
                scanner.count_in_range(lo, hi).unwrap(),
                expected,
                "[{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn disjoint_predicates_skip_everything() {
        let values = clustered();
        let stream = stream_of(&values, 1000);
        let scanner = Scanner::open(&stream).unwrap();
        let (count, stats) = scanner
            .count_in_range_with_stats(1_000_000, 2_000_000)
            .unwrap();
        assert_eq!(count, 0);
        assert_eq!(stats.blocks_decoded, 0);
        assert_eq!(stats.blocks_skipped, scanner.num_blocks());
    }

    #[test]
    fn selective_predicates_skip_most_blocks() {
        let values = clustered();
        let stream = stream_of(&values, 1000); // block == cluster
        let scanner = Scanner::open(&stream).unwrap();
        let (count, stats) = scanner.count_in_range_with_stats(30_000, 30_499).unwrap();
        assert_eq!(count, 1000);
        assert!(
            stats.blocks_decoded <= 2,
            "decoded {} blocks",
            stats.blocks_decoded
        );
    }

    #[test]
    fn min_is_header_only_and_exact() {
        let mut values = clustered();
        values[5000] = -123_456;
        let stream = stream_of(&values, 1024);
        let scanner = Scanner::open(&stream).unwrap();
        assert_eq!(scanner.min().unwrap(), Some(-123_456));
    }

    #[test]
    fn max_decodes_few_blocks() {
        let values = clustered();
        let stream = stream_of(&values, 1000);
        let scanner = Scanner::open(&stream).unwrap();
        let (max, stats) = scanner.max().unwrap();
        assert_eq!(max, Some(*values.iter().max().unwrap()));
        assert!(
            stats.blocks_decoded <= 2,
            "decoded {}",
            stats.blocks_decoded
        );
    }

    #[test]
    fn sum_and_materialize() {
        let values = clustered();
        let stream = stream_of(&values, 777);
        let scanner = Scanner::open(&stream).unwrap();
        assert_eq!(
            scanner.sum().unwrap(),
            values.iter().map(|&v| v as i128).sum::<i128>()
        );
        assert_eq!(scanner.materialize().unwrap(), values);
        assert_eq!(scanner.len(), values.len());
    }

    #[test]
    fn filter_matches_reference() {
        let values = clustered();
        let stream = stream_of(&values, 512);
        let scanner = Scanner::open(&stream).unwrap();
        let (got, _) = scanner.filter_range(10_000, 20_400).unwrap();
        let expected: Vec<i64> = values
            .iter()
            .copied()
            .filter(|&v| (10_000..=20_400).contains(&v))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_and_corrupt_streams() {
        let stream = stream_of(&[], 64);
        let scanner = Scanner::open(&stream).unwrap();
        assert!(scanner.is_empty());
        assert_eq!(scanner.min().unwrap(), None);
        assert_eq!(scanner.max().unwrap().0, None);
        assert_eq!(scanner.sum().unwrap(), 0);

        assert!(Scanner::open(&[0xFF, 0xFF]).is_err());
        let full = stream_of(&clustered(), 512);
        for cut in [1, full.len() / 3, full.len() - 1] {
            assert!(Scanner::open(&full[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn works_with_all_solver_kinds() {
        let values = clustered();
        for kind in [SolverKind::Median, SolverKind::Value, SolverKind::BitWidth] {
            let mut stream = Vec::new();
            StreamEncoder::new(kind, 1024).encode(&values, &mut stream);
            let scanner = Scanner::open(&stream).unwrap();
            assert_eq!(
                scanner.count_in_range(0, 10_000).unwrap(),
                values
                    .iter()
                    .filter(|&&v| (0..=10_000).contains(&v))
                    .count()
            );
        }
    }
}
