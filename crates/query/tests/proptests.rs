//! Property tests: every scanner answer must equal the brute-force answer
//! on the decoded series, for arbitrary data, block sizes and predicates.

use bos::stream::StreamEncoder;
use bos::SolverKind;
use proptest::prelude::*;
use query::Scanner;

fn stream_of(values: &[i64], block: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    StreamEncoder::new(SolverKind::BitWidth, block).encode(values, &mut buf);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_equals_bruteforce(
        values in prop::collection::vec(-10_000i64..10_000, 0..3000),
        block in 1usize..600,
        lo in -12_000i64..12_000,
        span in 0i64..8_000,
    ) {
        let hi = lo.saturating_add(span);
        let stream = stream_of(&values, block);
        let scanner = Scanner::open(&stream).unwrap();
        let expected = values.iter().filter(|&&v| v >= lo && v <= hi).count();
        prop_assert_eq!(scanner.count_in_range(lo, hi).unwrap(), expected);
    }

    #[test]
    fn filter_equals_bruteforce(
        values in prop::collection::vec(-500i64..500, 0..2000),
        block in 1usize..300,
        lo in -600i64..600,
        span in 0i64..500,
    ) {
        let hi = lo.saturating_add(span);
        let stream = stream_of(&values, block);
        let scanner = Scanner::open(&stream).unwrap();
        let expected: Vec<i64> = values.iter().copied().filter(|&v| v >= lo && v <= hi).collect();
        let (got, _) = scanner.filter_range(lo, hi).unwrap();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn aggregates_equal_bruteforce(
        values in prop::collection::vec(any::<i32>(), 0..2000),
        block in 1usize..500,
    ) {
        let values: Vec<i64> = values.into_iter().map(|v| v as i64).collect();
        let stream = stream_of(&values, block);
        let scanner = Scanner::open(&stream).unwrap();
        prop_assert_eq!(scanner.min().unwrap(), values.iter().copied().min());
        prop_assert_eq!(scanner.max().unwrap().0, values.iter().copied().max());
        prop_assert_eq!(scanner.sum().unwrap(), values.iter().map(|&v| v as i128).sum::<i128>());
        prop_assert_eq!(scanner.materialize().unwrap(), values);
    }

    #[test]
    fn extreme_domain_aggregates(
        values in prop::collection::vec(any::<i64>(), 0..500),
        block in 1usize..200,
    ) {
        let stream = stream_of(&values, block);
        let scanner = Scanner::open(&stream).unwrap();
        prop_assert_eq!(scanner.min().unwrap(), values.iter().copied().min());
        prop_assert_eq!(scanner.max().unwrap().0, values.iter().copied().max());
    }

    #[test]
    fn garbage_streams_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(scanner) = Scanner::open(&bytes) {
            let _ = scanner.count_in_range(0, 100);
            let _ = scanner.min();
        }
    }
}
