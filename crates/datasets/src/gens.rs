//! The twelve evaluation-dataset generators (Table III / Figure 8).
//!
//! The paper's datasets mix public data and private partner data; this
//! reproduction substitutes seeded synthetic series whose *post-delta
//! distributions* match the histograms of Figure 8 — which is the property
//! the compression experiments actually depend on (see DESIGN.md §2,
//! substitution 1). Each generator documents the shape it reproduces.

use crate::synth::{quantize_clamped, round_decimals, Synth};

/// EPM-Education (EE): e-learning activity counters, integers up to ~150 k.
/// Post-delta: wide, roughly normal (Fig. 8a), with bursty upper outliers.
pub fn epm_education(n: usize, seed: u64) -> Vec<i64> {
    let mut s = Synth::new(seed);
    let mut level = 60_000.0f64;
    let values = (0..n).map(|_| {
        // Mean-reverting activity level with occasional enrolment bursts.
        level += s.gaussian(0.0, 900.0) - (level - 60_000.0) * 0.01;
        let burst = if s.bernoulli(0.004) {
            s.lognormal(9.5, 0.8)
        } else {
            0.0
        };
        level + burst
    });
    quantize_clamped(values, 0, 160_000)
}

/// GW-Magnetic (GM): geomagnetic field strength, floats up to ~600 k with
/// 2 decimals. Smooth with storm spikes; post-delta heavy-tailed (Fig. 8h).
pub fn gw_magnetic(n: usize, seed: u64) -> Vec<f64> {
    let mut s = Synth::new(seed);
    let mut base = 300_000.0f64;
    let mut storm = 0.0f64;
    let values = (0..n).map(|i| {
        base += s.gaussian(0.0, 18.0) - (base - 300_000.0) * 0.0005;
        if s.bernoulli(0.0015) {
            storm = s.lognormal(10.5, 1.0);
        }
        storm *= 0.97; // decaying storm
        let daily = 1500.0 * (i as f64 * std::f64::consts::TAU / 1440.0).sin();
        (base + daily + storm).clamp(0.0, 650_000.0)
    });
    round_decimals(values, 2)
}

/// Metro-Traffic (MT): hourly vehicle counts, integers up to ~10 k with a
/// strong diurnal cycle. Post-delta roughly normal (Fig. 8b).
pub fn metro_traffic(n: usize, seed: u64) -> Vec<i64> {
    let mut s = Synth::new(seed);
    let values = (0..n).map(|i| {
        let hour = (i % 24) as f64;
        // Two rush-hour humps.
        let rush = 3500.0 * (-((hour - 8.0) / 2.5).powi(2)).exp()
            + 4200.0 * (-((hour - 17.0) / 3.0).powi(2)).exp();
        let base = 800.0 + rush;
        let weekend = if (i / 24) % 7 >= 5 { 0.55 } else { 1.0 };
        let incident = if s.bernoulli(0.002) { -0.5 * base } else { 0.0 };
        base * weekend + incident + s.gaussian(0.0, 180.0)
    });
    quantize_clamped(values, 0, 10_500)
}

/// Nifty-Stocks (NS): stock prices, floats up to ~75 k with 2 decimals.
/// Random walk with volatility clustering; post-delta stepwise (Fig. 8l).
pub fn nifty_stocks(n: usize, seed: u64) -> Vec<f64> {
    let mut s = Synth::new(seed);
    let mut price = 18_000.0f64;
    let mut vol = 8.0f64;
    let values = (0..n).map(|_| {
        vol = (vol * 0.995 + s.exponential(0.05)).clamp(2.0, 80.0);
        price = (price + s.gaussian(0.0, vol)).max(100.0);
        if s.bernoulli(0.0008) {
            price *= 1.0 + s.gaussian(0.0, 0.02); // gap open
        }
        price.min(75_000.0)
    });
    round_decimals(values, 2)
}

/// USGS-Earthquakes (UE): seismic readings, floats up to ~20 k. A calm
/// noise floor with rare large-magnitude events (Fig. 8i: sharp spike at
/// zero delta plus long tails).
pub fn usgs_earthquakes(n: usize, seed: u64) -> Vec<f64> {
    let mut s = Synth::new(seed);
    let mut after = 0.0f64;
    let values = (0..n).map(|_| {
        if s.bernoulli(0.003) {
            after = s.lognormal(8.0, 1.2);
        }
        after *= 0.90; // aftershock decay
        let floor = 40.0 + s.gaussian(0.0, 6.0).abs();
        (floor + after).min(22_000.0)
    });
    round_decimals(values, 1)
}

/// Vehicle-Charge (VC): EV charging sessions, integers up to ~3 k. Charge
/// plateaus with ramp-ups; post-delta normal-ish (Fig. 8c). The original
/// has only 3 396 rows — kept small here too.
pub fn vehicle_charge(n: usize, seed: u64) -> Vec<i64> {
    let mut s = Synth::new(seed);
    let mut soc = 800.0f64; // state of charge ×10
    let mut mode = 0i32; // −1 discharging, 0 idle, +1 charging
    let values = (0..n).map(|_| {
        if s.bernoulli(0.02) {
            mode = s.uniform_int(-1, 2) as i32;
        }
        let slope = match mode {
            1 => 18.0,
            -1 => -7.0,
            _ => 0.0,
        };
        soc = (soc + slope + s.gaussian(0.0, 3.0)).clamp(0.0, 3000.0);
        soc
    });
    quantize_clamped(values, 0, 3000)
}

/// CS-Sensors (CS): industrial sensor channel, integers up to ~6 k. Long
/// frozen stretches (quantized readings) broken by re-calibration jumps —
/// the delta histogram is a huge spike at 0 with rare two-sided outliers
/// (Fig. 8d). This is the dataset where BOS gains most (5.23 vs 2.66).
pub fn cs_sensors(n: usize, seed: u64) -> Vec<i64> {
    let mut s = Synth::new(seed);
    let mut level = 3_000i64;
    let values: Vec<i64> = (0..n)
        .map(|_| {
            if s.bernoulli(0.01) {
                // re-calibration jump, either direction
                level += (s.gaussian(0.0, 900.0)) as i64;
                level = level.clamp(0, 6_000);
            } else if s.bernoulli(0.15) {
                // tiny quantized wobble
                level += s.uniform_int(-2, 3);
                level = level.clamp(0, 6_000);
            }
            level
        })
        .collect();
    values
}

/// Cyber-Vehicle (CV): connected-vehicle telemetry, values up to ~200 k.
/// Mixed speed/odometer-like channels; post-delta normal with wide tails
/// (Fig. 8j).
pub fn cyber_vehicle(n: usize, seed: u64) -> Vec<i64> {
    let mut s = Synth::new(seed);
    let mut speed = 0.0f64;
    let mut odo = 50_000.0f64;
    let values = (0..n).map(|i| {
        speed = (speed + s.gaussian(0.0, 4.0)).clamp(0.0, 130.0);
        odo += speed / 36.0;
        if i % 4 == 0 {
            odo // odometer channel sample
        } else {
            speed * 1000.0 + s.gaussian(0.0, 50.0)
        }
    });
    quantize_clamped(values, 0, 220_000)
}

/// TH-Climate (TC): climate station, integers up to ~1 k. Slow seasonal
/// drift with a *skewed* delta distribution: many small negative deltas in
/// a narrow band plus larger positive jumps (Fig. 8e) — the regime where
/// BOS-M's symmetric window struggles (§VIII-B1).
pub fn th_climate(n: usize, seed: u64) -> Vec<i64> {
    let mut s = Synth::new(seed);
    let mut t = 500.0f64;
    let values = (0..n).map(|i| {
        // Sawtooth: slow cooling, fast heating — skewed deltas.
        if s.bernoulli(0.03) {
            t += s.exponential(25.0);
        } else {
            t -= s.exponential(0.8);
        }
        t = t.clamp(0.0, 1_100.0);
        t + 30.0 * (i as f64 * std::f64::consts::TAU / 1440.0).sin()
    });
    quantize_clamped(values, 0, 1_100)
}

/// TY-Fuel (TF): vehicle fuel level ×10, values up to ~150. Slow drain
/// with abrupt refuels: deltas are a tight cluster near zero plus large
/// positive outliers (Fig. 8k).
pub fn ty_fuel(n: usize, seed: u64) -> Vec<i64> {
    let mut s = Synth::new(seed);
    let mut fuel = 120.0f64;
    let values = (0..n).map(|_| {
        // Consumption varies with driving intensity (sloshing sensor noise
        // included), so deltas cluster around −1..0 rather than freezing.
        fuel -= s.exponential(0.35) - 0.1;
        if fuel < 15.0 || s.bernoulli(0.003) {
            fuel = 130.0 + s.gaussian(0.0, 8.0); // refuel: big positive jump
        }
        fuel.clamp(0.0, 155.0)
    });
    quantize_clamped(values, 0, 155)
}

/// TY-Transport (TT): fleet telemetry, integers up to ~100. Quantized
/// speeds with stop-and-go phases; post-delta near-normal with a spike at
/// zero (Fig. 8f).
pub fn ty_transport(n: usize, seed: u64) -> Vec<i64> {
    let mut s = Synth::new(seed);
    let mut speed = 40.0f64;
    let mut moving = true;
    let values = (0..n).map(|_| {
        if s.bernoulli(0.01) {
            moving = !moving;
        }
        if moving {
            speed = (speed + s.gaussian(0.0, 2.5)).clamp(0.0, 110.0);
        } else {
            speed = 0.0;
        }
        speed
    });
    quantize_clamped(values, 0, 110)
}

/// YZ-Electricity (YE): electricity meter, floats up to ~20 k with 1
/// decimal. Step-load profile; post-delta spike-at-zero with two-sided
/// outliers (Fig. 8g). The original has only 10 108 rows.
pub fn yz_electricity(n: usize, seed: u64) -> Vec<f64> {
    let mut s = Synth::new(seed);
    let mut load = 4_000.0f64;
    let values = (0..n).map(|_| {
        if s.bernoulli(0.01) {
            // appliance/feeder switching in either direction
            load = (load + s.gaussian(0.0, 2_500.0)).clamp(200.0, 20_000.0);
        }
        load + s.gaussian(0.0, 15.0)
    });
    round_decimals(values.map(|v: f64| v.clamp(0.0, 20_000.0)), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(epm_education(500, 1), epm_education(500, 1));
        assert_ne!(epm_education(500, 1), epm_education(500, 2));
        assert_eq!(
            nifty_stocks(500, 3)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            nifty_stocks(500, 3)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn magnitudes_match_figure8_axes() {
        let checks: Vec<(&str, Vec<i64>, i64)> = vec![
            ("EE", epm_education(20_000, 1), 160_000),
            ("MT", metro_traffic(20_000, 1), 10_500),
            ("VC", vehicle_charge(3_396, 1), 3_000),
            ("CS", cs_sensors(20_000, 1), 6_000),
            ("TC", th_climate(20_000, 1), 1_100),
            ("TT", ty_transport(20_000, 1), 110),
            ("TF", ty_fuel(20_000, 1), 155),
            ("CV", cyber_vehicle(20_000, 1), 220_000),
        ];
        for (name, values, cap) in checks {
            let max = values.iter().copied().max().unwrap();
            let min = values.iter().copied().min().unwrap();
            assert!(min >= 0, "{name} has negatives");
            assert!(max <= cap, "{name} exceeds cap: {max}");
            assert!(max > cap / 20, "{name} suspiciously small: {max}");
        }
    }

    #[test]
    fn float_sets_have_fixed_decimals() {
        for (vals, p) in [
            (gw_magnetic(5_000, 1), 2u32),
            (nifty_stocks(5_000, 1), 2),
            (usgs_earthquakes(5_000, 1), 1),
            (yz_electricity(5_000, 1), 1),
        ] {
            let scale = 10f64.powi(p as i32);
            for &v in &vals {
                assert_eq!((v * scale).round() / scale, v);
            }
        }
    }

    #[test]
    fn cs_sensors_deltas_spike_at_zero() {
        let values = cs_sensors(50_000, 1);
        let zeros = values.windows(2).filter(|w| w[1] == w[0]).count();
        assert!(
            zeros as f64 > 0.7 * (values.len() - 1) as f64,
            "only {zeros} zero deltas"
        );
    }

    #[test]
    fn th_climate_deltas_are_skewed() {
        let values = th_climate(50_000, 1);
        let deltas: Vec<i64> = values.windows(2).map(|w| w[1] - w[0]).collect();
        let neg = deltas.iter().filter(|&&d| d < 0).count();
        let pos = deltas.iter().filter(|&&d| d > 0).count();
        // Many more small negative steps than positive jumps.
        assert!(neg > 2 * pos, "neg {neg} pos {pos}");
        let max_pos = deltas.iter().copied().max().unwrap();
        let min_neg = deltas.iter().copied().min().unwrap();
        assert!(max_pos > -min_neg, "positive jumps should dominate in size");
    }

    #[test]
    fn ty_fuel_has_positive_refuel_outliers() {
        let values = ty_fuel(100_000, 1);
        let deltas: Vec<i64> = values.windows(2).map(|w| w[1] - w[0]).collect();
        let refuels = deltas.iter().filter(|&&d| d > 50).count();
        assert!(refuels > 3, "no refuel events: {refuels}");
        let small = deltas.iter().filter(|&&d| d.abs() <= 2).count();
        assert!(small as f64 > 0.9 * deltas.len() as f64);
    }
}
