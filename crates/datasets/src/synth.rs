//! Synthesis primitives shared by the dataset generators.
//!
//! Everything is seeded and deterministic. Normal sampling uses Box–Muller
//! (keeping the dependency set to plain `rand`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator stream.
pub struct Synth {
    rng: StdRng,
    /// Cached second Box–Muller output.
    spare: Option<f64>,
}

impl Synth {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_int(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..hi)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Avoid ln(0).
        let u1 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2 = self.rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with mean and standard deviation.
    pub fn gaussian(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.normal()
    }

    /// Log-normal: `exp(N(mu, sigma))` — the heavy-tailed spike magnitude.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gaussian(mu, sigma).exp()
    }

    /// True with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// Exponentially-distributed positive value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }
}

/// Clamps and rounds a float series to integers in `[lo, hi]`.
pub fn quantize_clamped(values: impl IntoIterator<Item = f64>, lo: i64, hi: i64) -> Vec<i64> {
    values
        .into_iter()
        .map(|v| (v.round() as i64).clamp(lo, hi))
        .collect()
}

/// Rounds a float series to `decimals` decimal places (making the `×10^p`
/// integer scaling of the paper exactly invertible).
pub fn round_decimals(values: impl IntoIterator<Item = f64>, decimals: u32) -> Vec<f64> {
    let scale = 10f64.powi(decimals as i32);
    values
        .into_iter()
        .map(|v| (v * scale).round() / scale)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Synth::new(7);
        let mut b = Synth::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
        }
        let mut c = Synth::new(8);
        let same: usize = (0..100)
            .filter(|_| Synth::new(7).uniform() == c.uniform())
            .count();
        assert!(same < 100);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut s = Synth::new(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| s.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_heavy_tailed() {
        let mut s = Synth::new(1);
        let samples: Vec<f64> = (0..10_000).map(|_| s.lognormal(0.0, 2.0)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        let max = samples.iter().cloned().fold(0.0, f64::max);
        let median = {
            let mut v = samples.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!(max > 50.0 * median, "max {max} median {median}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut s = Synth::new(3);
        let hits = (0..100_000).filter(|_| s.bernoulli(0.1)).count();
        assert!((hits as f64 - 10_000.0).abs() < 600.0, "{hits}");
    }

    #[test]
    fn quantize_respects_bounds() {
        let q = quantize_clamped([1.4, -5.9, 1e12, f64::from(-1e9f32)], 0, 100);
        assert_eq!(q, vec![1, 0, 100, 0]);
    }

    #[test]
    fn round_decimals_is_exactly_invertible() {
        let r = round_decimals([1.23456, -9.87654], 2);
        assert_eq!(r, vec![1.23, -9.88]);
        for &v in &r {
            assert_eq!((v * 100.0).round() / 100.0, v);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut s = Synth::new(11);
        let n = 100_000;
        let mean = (0..n).map(|_| s.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "{mean}");
    }
}
