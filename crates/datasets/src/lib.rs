//! Synthetic evaluation datasets for the BOS reproduction.
//!
//! The paper evaluates on twelve real-world series (Table III), several of
//! them private partner data. This crate generates seeded substitutes whose
//! distribution shapes match Figure 8 (see `gens` for per-dataset notes and
//! DESIGN.md §2 for the substitution rationale). Row counts are scaled down
//! from the multi-hundred-million originals — compression *ratio* is
//! size-independent once blocks amortize headers.
//!
//! ```
//! use datasets::all_datasets;
//! let sets = all_datasets(10_000); // 10k values per dataset
//! assert_eq!(sets.len(), 12);
//! for d in &sets {
//!     assert!(!d.as_scaled_ints().is_empty());
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod gens;
pub mod moments;
pub mod synth;
pub mod timestamps;

/// The value type of a dataset (Table III's "Data Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// Integer series — all integer encoders apply directly.
    Integer,
    /// Float series — float codecs apply directly; integer encoders go
    /// through the `×10^p` scaling.
    Float,
}

/// The payload of a dataset.
#[derive(Debug, Clone)]
pub enum SeriesData {
    /// Integer values.
    Ints(Vec<i64>),
    /// Float values quantized to `decimals` decimal places.
    Floats {
        /// The values.
        values: Vec<f64>,
        /// Decimal precision `p` used by the `×10^p` scaling.
        decimals: u32,
    },
}

/// One evaluation dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Full name as in Table III, e.g. "EPM-Education".
    pub name: &'static str,
    /// Abbreviation used in the tables, e.g. "EE".
    pub abbr: &'static str,
    /// Value type.
    pub kind: DataType,
    /// The series.
    pub data: SeriesData,
}

impl Dataset {
    /// Number of values.
    pub fn len(&self) -> usize {
        match &self.data {
            SeriesData::Ints(v) => v.len(),
            SeriesData::Floats { values, .. } => values.len(),
        }
    }

    /// True when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Uncompressed size in bytes (8 bytes per value, the paper's
    /// long/double representation).
    pub fn uncompressed_bytes(&self) -> usize {
        self.len() * 8
    }

    /// Integer view: the values themselves for integer sets, the exactly
    /// scaled `value × 10^p` integers for float sets (the conversion the
    /// paper applies before running integer encoders on float data).
    pub fn as_scaled_ints(&self) -> Vec<i64> {
        match &self.data {
            SeriesData::Ints(v) => v.clone(),
            SeriesData::Floats { values, decimals } => {
                let scale = 10f64.powi(*decimals as i32);
                values.iter().map(|&v| (v * scale).round() as i64).collect()
            }
        }
    }

    /// Float view: the values themselves for float sets, lossless casts
    /// for integer sets (every generated integer is far below 2^53).
    pub fn as_floats(&self) -> Vec<f64> {
        match &self.data {
            SeriesData::Ints(v) => v.iter().map(|&x| x as f64).collect(),
            SeriesData::Floats { values, .. } => values.clone(),
        }
    }
}

/// Dataset registry entry: name, abbreviation, type, generator.
struct Spec {
    name: &'static str,
    abbr: &'static str,
    kind: DataType,
    decimals: u32,
    gen_int: Option<fn(usize, u64) -> Vec<i64>>,
    gen_float: Option<fn(usize, u64) -> Vec<f64>>,
}

/// Registry in the column order of Figure 10a (integer sets first).
fn registry() -> Vec<Spec> {
    vec![
        Spec {
            name: "EPM-Education",
            abbr: "EE",
            kind: DataType::Integer,
            decimals: 0,
            gen_int: Some(gens::epm_education),
            gen_float: None,
        },
        Spec {
            name: "Metro-Traffic",
            abbr: "MT",
            kind: DataType::Integer,
            decimals: 0,
            gen_int: Some(gens::metro_traffic),
            gen_float: None,
        },
        Spec {
            name: "Vehicle-Charge",
            abbr: "VC",
            kind: DataType::Integer,
            decimals: 0,
            gen_int: Some(gens::vehicle_charge),
            gen_float: None,
        },
        Spec {
            name: "CS-Sensors",
            abbr: "CS",
            kind: DataType::Integer,
            decimals: 0,
            gen_int: Some(gens::cs_sensors),
            gen_float: None,
        },
        Spec {
            name: "TH-Climate",
            abbr: "TC",
            kind: DataType::Integer,
            decimals: 0,
            gen_int: Some(gens::th_climate),
            gen_float: None,
        },
        Spec {
            name: "TY-Transport",
            abbr: "TT",
            kind: DataType::Integer,
            decimals: 0,
            gen_int: Some(gens::ty_transport),
            gen_float: None,
        },
        Spec {
            name: "YZ-Electricity",
            abbr: "YE",
            kind: DataType::Float,
            decimals: 1,
            gen_int: None,
            gen_float: Some(gens::yz_electricity),
        },
        Spec {
            name: "GW-Magnetic",
            abbr: "GM",
            kind: DataType::Float,
            decimals: 2,
            gen_int: None,
            gen_float: Some(gens::gw_magnetic),
        },
        Spec {
            name: "USGS-Earthquakes",
            abbr: "UE",
            kind: DataType::Float,
            decimals: 1,
            gen_int: None,
            gen_float: Some(gens::usgs_earthquakes),
        },
        Spec {
            name: "Cyber-Vehicle",
            abbr: "CV",
            kind: DataType::Integer,
            decimals: 0,
            gen_int: Some(gens::cyber_vehicle),
            gen_float: None,
        },
        Spec {
            name: "TY-Fuel",
            abbr: "TF",
            kind: DataType::Integer,
            decimals: 0,
            gen_int: Some(gens::ty_fuel),
            gen_float: None,
        },
        Spec {
            name: "Nifty-Stocks",
            abbr: "NS",
            kind: DataType::Float,
            decimals: 2,
            gen_int: None,
            gen_float: Some(gens::nifty_stocks),
        },
    ]
}

/// Abbreviations in Figure 10a column order.
pub const ABBREVIATIONS: [&str; 12] = [
    "EE", "MT", "VC", "CS", "TC", "TT", "YE", "GM", "UE", "CV", "TF", "NS",
];

/// Generates one dataset by abbreviation with `n` values. The seed is
/// derived from the abbreviation so every dataset differs but stays
/// reproducible. Returns `None` for unknown abbreviations.
pub fn generate(abbr: &str, n: usize) -> Option<Dataset> {
    let spec = registry().into_iter().find(|s| s.abbr == abbr)?;
    let seed = 0xB05_u64.wrapping_mul(31).wrapping_add(
        abbr.bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64)),
    );
    // Vehicle-Charge keeps its original tiny size (Table III: 3 396 rows).
    let n = if abbr == "VC" { n.min(3_396) } else { n };
    let data = match spec.kind {
        DataType::Integer => SeriesData::Ints((spec.gen_int.expect("int gen"))(n, seed)),
        DataType::Float => SeriesData::Floats {
            values: (spec.gen_float.expect("float gen"))(n, seed),
            decimals: spec.decimals,
        },
    };
    Some(Dataset {
        name: spec.name,
        abbr: spec.abbr,
        kind: spec.kind,
        data,
    })
}

/// All twelve datasets with `n` values each (Table III order as used by
/// Figure 10a).
pub fn all_datasets(n: usize) -> Vec<Dataset> {
    ABBREVIATIONS
        .iter()
        .map(|abbr| generate(abbr, n).expect("registry covers all abbreviations"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let sets = all_datasets(1_000);
        assert_eq!(sets.len(), 12);
        let abbrs: Vec<&str> = sets.iter().map(|d| d.abbr).collect();
        assert_eq!(abbrs, ABBREVIATIONS.to_vec());
        assert_eq!(sets.iter().filter(|d| d.kind == DataType::Float).count(), 4);
    }

    #[test]
    fn unknown_abbreviation_is_none() {
        assert!(generate("XX", 100).is_none());
    }

    #[test]
    fn vehicle_charge_is_capped() {
        let d = generate("VC", 1_000_000).unwrap();
        assert_eq!(d.len(), 3_396);
    }

    #[test]
    fn scaled_ints_roundtrip_floats() {
        for abbr in ["YE", "GM", "UE", "NS"] {
            let d = generate(abbr, 2_000).unwrap();
            let SeriesData::Floats { values, decimals } = &d.data else {
                panic!("{abbr} should be float");
            };
            let ints = d.as_scaled_ints();
            let scale = 10f64.powi(*decimals as i32);
            let back: Vec<f64> = ints.iter().map(|&v| v as f64 / scale).collect();
            assert_eq!(&back, values, "{abbr} scaling not exact");
        }
    }

    #[test]
    fn uncompressed_bytes_is_8_per_value() {
        let d = generate("EE", 123).unwrap();
        assert_eq!(d.uncompressed_bytes(), 123 * 8);
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = generate("CS", 5_000).unwrap().as_scaled_ints();
        let b = generate("CS", 5_000).unwrap().as_scaled_ints();
        assert_eq!(a, b);
        let c = generate("TT", 5_000).unwrap().as_scaled_ints();
        assert_ne!(a, c);
    }
}
