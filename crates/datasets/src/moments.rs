//! Descriptive statistics for series and their delta streams.
//!
//! Figure 8 characterizes each dataset by the distribution of its deltas
//! (mean/spread/skew and the histogram shape); the generators' tests and
//! the `exp_fig08_distributions` experiment both need the same moments,
//! so they live here.

/// Summary statistics of an integer series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Skewness (third standardized moment; 0 for symmetric data).
    pub skew: f64,
    /// Excess kurtosis (0 for a normal distribution).
    pub kurtosis: f64,
    /// Minimum value.
    pub min: i64,
    /// Maximum value.
    pub max: i64,
    /// Fraction of exact zeros.
    pub zero_frac: f64,
}

/// Computes [`Moments`] in one pass (plus one for the centered moments).
/// Returns `None` for an empty series.
pub fn moments(values: &[i64]) -> Option<Moments> {
    if values.is_empty() {
        return None;
    }
    let n = values.len();
    let nf = n as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / nf;
    let (mut m2, mut m3, mut m4) = (0.0f64, 0.0f64, 0.0f64);
    let (mut min, mut max, mut zeros) = (i64::MAX, i64::MIN, 0usize);
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        if v == 0 {
            zeros += 1;
        }
        let d = v as f64 - mean;
        let d2 = d * d;
        m2 += d2;
        m3 += d2 * d;
        m4 += d2 * d2;
    }
    m2 /= nf;
    m3 /= nf;
    m4 /= nf;
    let std = m2.sqrt();
    let (skew, kurtosis) = if std > 0.0 {
        (m3 / (std * std * std), m4 / (m2 * m2) - 3.0)
    } else {
        (0.0, 0.0)
    };
    Some(Moments {
        n,
        mean,
        std,
        skew,
        kurtosis,
        min,
        max,
        zero_frac: zeros as f64 / nf,
    })
}

/// First-order delta stream of a series (the Figure 8 transform).
pub fn deltas(values: &[i64]) -> Vec<i64> {
    values.windows(2).map(|w| w[1].wrapping_sub(w[0])).collect()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method.
/// Returns `None` for an empty series.
pub fn quantile(values: &[i64], q: f64) -> Option<i64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Histogram over `buckets` equal-width bins clipped to `mean ± 3σ`
/// (values beyond land in the edge bins — the Figure 8 plotting style).
pub fn histogram(values: &[i64], buckets: usize) -> Vec<usize> {
    assert!(buckets >= 1);
    let Some(m) = moments(values) else {
        return vec![0; buckets];
    };
    let std = m.std.max(1e-9);
    let lo = m.mean - 3.0 * std;
    let hi = m.mean + 3.0 * std;
    let mut counts = vec![0usize; buckets];
    for &v in values {
        let t = ((v as f64 - lo) / (hi - lo)).clamp(0.0, 1.0);
        let b = ((t * buckets as f64) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Synth;

    #[test]
    fn empty_series() {
        assert!(moments(&[]).is_none());
        assert!(quantile(&[], 0.5).is_none());
        assert_eq!(histogram(&[], 4), vec![0; 4]);
    }

    #[test]
    fn constants_have_zero_spread() {
        let m = moments(&[7; 100]).unwrap();
        assert_eq!(m.mean, 7.0);
        assert_eq!(m.std, 0.0);
        assert_eq!(m.skew, 0.0);
        assert_eq!((m.min, m.max), (7, 7));
    }

    #[test]
    fn known_small_sample() {
        let m = moments(&[1, 2, 3, 4]).unwrap();
        assert_eq!(m.mean, 2.5);
        assert!((m.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(m.skew, 0.0); // symmetric
        assert_eq!(m.zero_frac, 0.0);
    }

    #[test]
    fn normal_samples_match_theory() {
        let mut s = Synth::new(5);
        let values: Vec<i64> = (0..200_000)
            .map(|_| s.gaussian(100.0, 25.0).round() as i64)
            .collect();
        let m = moments(&values).unwrap();
        assert!((m.mean - 100.0).abs() < 0.5, "mean {}", m.mean);
        assert!((m.std - 25.0).abs() < 0.5, "std {}", m.std);
        assert!(m.skew.abs() < 0.05, "skew {}", m.skew);
        assert!(m.kurtosis.abs() < 0.1, "kurtosis {}", m.kurtosis);
    }

    #[test]
    fn exponential_is_right_skewed() {
        let mut s = Synth::new(9);
        let values: Vec<i64> = (0..50_000).map(|_| (s.exponential(50.0)) as i64).collect();
        let m = moments(&values).unwrap();
        assert!(m.skew > 1.5, "skew {}", m.skew); // theory: 2
        assert!(m.kurtosis > 3.0, "kurtosis {}", m.kurtosis); // theory: 6
    }

    #[test]
    fn quantiles_nearest_rank() {
        let values = [9i64, 1, 8, 2, 7, 3, 6, 4, 5, 10];
        assert_eq!(quantile(&values, 0.0), Some(1));
        assert_eq!(quantile(&values, 0.5), Some(5));
        assert_eq!(quantile(&values, 1.0), Some(10));
        assert_eq!(quantile(&values, 0.25), Some(3));
    }

    #[test]
    fn deltas_match_definition() {
        assert_eq!(deltas(&[5, 8, 6, 6]), vec![3, -2, 0]);
        assert!(deltas(&[1]).is_empty());
        assert_eq!(deltas(&[i64::MIN, i64::MAX]), vec![-1]); // wrapping
    }

    #[test]
    fn histogram_buckets_sum_to_n() {
        let mut s = Synth::new(2);
        let values: Vec<i64> = (0..10_000).map(|_| s.gaussian(0.0, 10.0) as i64).collect();
        let h = histogram(&values, 32);
        assert_eq!(h.iter().sum::<usize>(), values.len());
        // The mode should be near the center for a bell.
        let peak = h.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert!((12..=20).contains(&peak), "peak at {peak}");
    }
}
