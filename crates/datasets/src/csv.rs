//! Minimal CSV save/load for dataset snapshots.
//!
//! The paper's artifact ships its datasets as CSV; this module lets users
//! export the synthetic series (for inspection or cross-tool comparison)
//! and load their own single-column CSV series into the experiment
//! harness.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Writes one value per line with a `value` header.
pub fn save_ints(path: &Path, values: &[i64]) -> io::Result<()> {
    let mut out = String::with_capacity(values.len() * 8 + 16);
    out.push_str("value\n");
    for v in values {
        writeln!(out, "{v}").expect("string write");
    }
    std::fs::write(path, out)
}

/// Writes one float per line with a `value` header, full round-trippable
/// precision.
pub fn save_floats(path: &Path, values: &[f64]) -> io::Result<()> {
    let mut out = String::with_capacity(values.len() * 12 + 16);
    out.push_str("value\n");
    for v in values {
        writeln!(out, "{v}").expect("string write");
    }
    std::fs::write(path, out)
}

/// Loads a single-column CSV of integers; skips a header line when the
/// first line is not numeric. Returns an error for malformed lines.
pub fn load_ints(path: &Path) -> io::Result<Vec<i64>> {
    let content = std::fs::read_to_string(path)?;
    parse_ints(&content).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Loads a single-column CSV of floats; same header handling.
pub fn load_floats(path: &Path) -> io::Result<Vec<f64>> {
    let content = std::fs::read_to_string(path)?;
    parse_floats(&content).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn parse_ints(content: &str) -> Result<Vec<i64>, String> {
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.parse::<i64>() {
            Ok(v) => out.push(v),
            Err(_) if i == 0 => continue, // header
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

fn parse_floats(content: &str) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.parse::<f64>() {
            Ok(v) => out.push(v),
            Err(_) if i == 0 => continue,
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_roundtrip() {
        let dir = std::env::temp_dir().join("bos_csv_test_int");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("ints.csv");
        let values = vec![1i64, -5, 0, i64::MAX, i64::MIN];
        save_ints(&path, &values).unwrap();
        assert_eq!(load_ints(&path).unwrap(), values);
    }

    #[test]
    fn floats_roundtrip() {
        let dir = std::env::temp_dir().join("bos_csv_test_float");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("floats.csv");
        let values = vec![1.25f64, -0.001, 1e15, 0.0];
        save_floats(&path, &values).unwrap();
        assert_eq!(load_floats(&path).unwrap(), values);
    }

    #[test]
    fn header_is_skipped_and_garbage_rejected() {
        assert_eq!(parse_ints("value\n1\n2\n").unwrap(), vec![1, 2]);
        assert_eq!(parse_ints("7\n8\n").unwrap(), vec![7, 8]);
        assert!(parse_ints("value\n1\nxyz\n").is_err());
        assert_eq!(parse_floats("value\n1.5\n").unwrap(), vec![1.5]);
    }
}
