//! Timestamp-column generators.
//!
//! Time-series stores keep a timestamp column next to every value column
//! (Apache TsFile pages are (time, value) pairs). Real timestamp columns
//! come in three shapes, all generated here for the `tsfile` timed-series
//! paths and their tests: strictly regular, regular-with-jitter, and
//! bursty (gaps between acquisition sessions).

use crate::synth::Synth;

/// Strictly periodic timestamps: `start, start+period, …` — the case where
/// second-order differencing stores ~0 bits per point.
pub fn regular(start: i64, period: i64, n: usize) -> Vec<i64> {
    assert!(period > 0);
    (0..n as i64).map(|i| start + i * period).collect()
}

/// Periodic timestamps with bounded jitter (e.g. network/OS scheduling
/// noise): monotonicity is preserved as long as `jitter < period / 2`.
pub fn jittered(start: i64, period: i64, jitter: i64, n: usize, seed: u64) -> Vec<i64> {
    assert!(period > 0 && jitter >= 0 && jitter < period / 2 + 1);
    let mut s = Synth::new(seed);
    (0..n as i64)
        .map(|i| start + i * period + s.uniform_int(-jitter, jitter + 1))
        .collect()
}

/// Bursty acquisition: sessions of `burst_len` regular samples separated
/// by much longer gaps — the delta stream is near-constant with rare huge
/// upper outliers, i.e. exactly BOS's target shape on the *time* column.
pub fn bursty(
    start: i64,
    period: i64,
    burst_len: usize,
    gap_mean: f64,
    n: usize,
    seed: u64,
) -> Vec<i64> {
    assert!(period > 0 && burst_len >= 1);
    let mut s = Synth::new(seed);
    let mut t = start;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        for _ in 0..burst_len.min(n - out.len()) {
            out.push(t);
            t += period;
        }
        t += (s.exponential(gap_mean)) as i64 + period;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::deltas;

    #[test]
    fn regular_is_arithmetic() {
        let t = regular(1000, 50, 10);
        assert_eq!(t.len(), 10);
        assert!(deltas(&t).iter().all(|&d| d == 50));
    }

    #[test]
    fn jittered_stays_monotonic_and_near_period() {
        let t = jittered(0, 1000, 400, 10_000, 7);
        assert!(t.windows(2).all(|w| w[1] > w[0]), "non-monotonic");
        let d = deltas(&t);
        assert!(d.iter().all(|&x| (200..=1800).contains(&x)));
        let mean = d.iter().sum::<i64>() as f64 / d.len() as f64;
        assert!((mean - 1000.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn bursty_has_outlier_gaps() {
        let t = bursty(0, 100, 500, 1e7, 20_000, 3);
        assert_eq!(t.len(), 20_000);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        let d = deltas(&t);
        let gaps = d.iter().filter(|&&x| x > 100_000).count();
        let regulars = d.iter().filter(|&&x| x == 100).count();
        assert!(gaps >= 30, "gaps {gaps}");
        assert!(regulars as f64 > 0.95 * d.len() as f64);
    }

    #[test]
    fn bursty_time_column_is_bos_friendly() {
        // The gap deltas are upper outliers: BOS should crush the column
        // relative to plain bit-packing.
        use bos::{BitWidthSolver, SortedBlock};
        let t = bursty(0, 100, 500, 1e9, 4_096, 11);
        let d = deltas(&t);
        let block = SortedBlock::from_values(&d[..1024]);
        let plain = block.plain_cost_bits();
        let bos = BitWidthSolver::new().solve(&block).cost_bits();
        assert!(bos * 3 < plain, "bos {bos} vs plain {plain}");
    }

    #[test]
    fn determinism() {
        assert_eq!(jittered(0, 10, 3, 100, 5), jittered(0, 10, 3, 100, 5));
        assert_ne!(jittered(0, 10, 3, 100, 5), jittered(0, 10, 3, 100, 6));
    }
}
