//! Scanning compressed data with block skipping: the query-side payoff of
//! the Section-VII block layout (each header carries the block minimum and
//! part widths, so range predicates can skip whole blocks undecoded).
//!
//! Run with: `cargo run --release --example query_scan`

use bos_repro::bos::stream::StreamEncoder;
use bos_repro::bos::SolverKind;
use bos_repro::datasets::generate;
use bos_repro::query::Scanner;
use std::time::Instant;

fn main() {
    // A long sensor series with distinct operating regimes.
    let values = generate("CS", 200_000).expect("dataset").as_scaled_ints();
    let mut stream = Vec::new();
    StreamEncoder::new(SolverKind::BitWidth, 1024).encode(&values, &mut stream);
    println!(
        "series: {} values, compressed stream {} bytes ({:.2}x)",
        values.len(),
        stream.len(),
        (values.len() * 8) as f64 / stream.len() as f64
    );

    let scanner = Scanner::open(&stream).expect("valid stream");
    println!(
        "zone map: {} blocks (built from headers only)\n",
        scanner.num_blocks()
    );

    // Header-only aggregates.
    let t = Instant::now();
    let min = scanner.min().unwrap();
    println!(
        "MIN  = {:?}  ({:.1} µs, zero blocks decoded)",
        min.unwrap(),
        t.elapsed().as_micros()
    );

    let t = Instant::now();
    let (max, stats) = scanner.max().unwrap();
    println!(
        "MAX  = {:?}  ({:.1} µs, {} of {} blocks decoded)",
        max.unwrap(),
        t.elapsed().as_micros(),
        stats.blocks_decoded,
        scanner.num_blocks()
    );

    // Selective range predicates.
    for (lo, hi) in [(0, 500), (5_800, 6_000), (2_000, 2_200)] {
        let t = Instant::now();
        let (count, stats) = scanner.count_in_range_with_stats(lo, hi).unwrap();
        println!(
            "COUNT value IN [{lo}, {hi}]  = {count:>7}  ({:>6.1} µs, decoded {}/{} blocks)",
            t.elapsed().as_micros(),
            stats.blocks_decoded,
            scanner.num_blocks()
        );
    }

    // Reference full scan for comparison.
    let t = Instant::now();
    let sum = scanner.sum().unwrap();
    println!(
        "SUM (full scan)       = {sum}  ({:.1} µs, all blocks decoded)",
        t.elapsed().as_micros()
    );

    // Cross-check against the raw data.
    assert_eq!(min, values.iter().copied().min());
    assert_eq!(max, values.iter().copied().max());
    assert_eq!(sum, values.iter().map(|&v| v as i128).sum::<i128>());
    println!("\nall answers verified against the uncompressed series ✓");
}
