//! An IoT ingestion pipeline: delta-encode sensor series and compare the
//! bit-packing operators, the way Apache IoTDB uses BOS in production.
//!
//! Run with: `cargo run --release --example iot_pipeline`

use bos_repro::datasets::{generate, Dataset};
use bos_repro::encodings::{OuterKind, PackerKind, Pipeline};

fn ratio(pipeline: &Pipeline, dataset: &Dataset) -> f64 {
    let ints = dataset.as_scaled_ints();
    let mut buf = Vec::new();
    pipeline.encode(&ints, &mut buf);
    // Verify losslessness before reporting anything.
    let mut out = Vec::new();
    let mut pos = 0;
    pipeline.decode(&buf, &mut pos, &mut out).expect("decode");
    assert_eq!(out, ints, "{} lost data", pipeline.label());
    dataset.uncompressed_bytes() as f64 / buf.len() as f64
}

fn main() {
    // Two archetypes: a frozen-with-recalibrations channel (CS) where BOS
    // shines, and a smooth drive signal (TT).
    for abbr in ["CS", "TT", "TF"] {
        let dataset = generate(abbr, 50_000).expect("known dataset");
        println!(
            "\n{} ({}, {} values, {} KiB raw)",
            dataset.name,
            abbr,
            dataset.len(),
            dataset.uncompressed_bytes() / 1024
        );
        println!("  {:<22} {:>8}", "method", "ratio");
        for packer in [
            PackerKind::Bp,
            PackerKind::Pfor,
            PackerKind::OptPfor,
            PackerKind::FastPfor,
            PackerKind::BosB,
            PackerKind::BosM,
        ] {
            let pipeline = Pipeline::new(OuterKind::Ts2Diff, packer);
            println!(
                "  {:<22} {:>8.2}",
                pipeline.label(),
                ratio(&pipeline, &dataset)
            );
        }
    }

    println!("\nBOS-B is a drop-in replacement: the stream stays self-describing,");
    println!("so readers decode it without knowing which solver produced it.");
}
