//! Plugging a custom operator into the encoder grid.
//!
//! The paper frames BOS as a drop-in replacement for the bit-packing
//! *operator* inside existing encoders. This example shows the extension
//! point from the other side: implement `encodings::IntPacker` (the
//! workspace-wide `bitpack::BlockCodec`, re-exported) for your own codec
//! and run it inside TS2DIFF, next to BOS and BP.
//!
//! The toy operator here is a varint coder — simple, byte-aligned, decent
//! on small deltas, terrible on wide ones — which makes the comparison
//! instructive.
//!
//! Run with: `cargo run --release --example custom_operator`

use bos_repro::bitpack::zigzag::{read_varint, write_varint, zigzag_decode, zigzag_encode};
use bos_repro::bos::{BosCodec, SolverKind};
use bos_repro::datasets::generate;
use bos_repro::encodings::ts2diff::Ts2DiffEncoding;
use bos_repro::encodings::IntPacker;

/// A zigzag-varint operator: one LEB128 varint per value.
struct VarintPacker;

impl IntPacker for VarintPacker {
    fn name(&self) -> &'static str {
        "VARINT"
    }

    fn encode(&self, values: &[i64], out: &mut Vec<u8>) {
        write_varint(out, values.len() as u64);
        for &v in values {
            write_varint(out, zigzag_encode(v));
        }
    }

    fn decode(
        &self,
        buf: &[u8],
        pos: &mut usize,
        out: &mut Vec<i64>,
    ) -> bos_repro::bitpack::DecodeResult<()> {
        let n = read_varint(buf, pos)? as usize;
        if n > bos_repro::bitpack::MAX_BLOCK_VALUES {
            return Err(bos_repro::bitpack::DecodeError::CountOverflow { claimed: n as u64 });
        }
        out.reserve(n);
        for _ in 0..n {
            out.push(zigzag_decode(read_varint(buf, pos)?));
        }
        Ok(())
    }
}

fn measure<P: IntPacker>(packer: P, values: &[i64]) -> (String, usize) {
    let enc = Ts2DiffEncoding::new(packer);
    let mut buf = Vec::new();
    enc.encode(values, &mut buf);
    let mut out = Vec::new();
    let mut pos = 0;
    enc.decode(&buf, &mut pos, &mut out).expect("lossless");
    assert_eq!(out, values);
    (enc.label(), buf.len())
}

fn main() {
    let values = generate("TT", 50_000).expect("dataset").as_scaled_ints();
    let raw = values.len() * 8;
    println!("TY-Transport, {} values, raw {} bytes\n", values.len(), raw);
    println!("{:<22} {:>10} {:>8}", "method", "bytes", "ratio");
    let rows = vec![
        measure(pfor::BpCodec::new(), &values),
        measure(VarintPacker, &values),
        measure(BosCodec::new(SolverKind::BitWidth), &values),
    ];
    for (label, bytes) in rows {
        println!(
            "{:<22} {:>10} {:>8.2}",
            label,
            bytes,
            raw as f64 / bytes as f64
        );
    }
    println!("\nAny `IntPacker` slots into RLE/TS2DIFF/SPRINTZ unchanged —");
    println!("exactly how BOS replaced bit-packing in Apache IoTDB.");
}
