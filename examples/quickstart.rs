//! Quickstart: compress one block with BOS and compare against plain
//! bit-packing, reproducing the paper's introductory example.
//!
//! Run with: `cargo run --release --example quickstart`

use bos_repro::bos::{BosCodec, Solution, SolverKind, SortedBlock};

fn main() {
    // The series from the paper's introduction: 8 is an upper outlier
    // (forcing 4-bit packing), 0 is a lower outlier (preventing the
    // min-subtraction from reaching a 2-bit width).
    let values: Vec<i64> = vec![3, 2, 4, 5, 3, 2, 0, 8];
    println!("series          : {values:?}");

    let block = SortedBlock::from_values(&values);
    println!(
        "plain bit-packing: {} bits ({} bits/value)",
        block.plain_cost_bits(),
        block.plain_cost_bits() / values.len() as u64
    );

    // BOS-B finds the optimal separation in O(n log n).
    let codec = BosCodec::new(SolverKind::BitWidth);
    let solution = codec.solve(&values);
    match solution {
        Solution::Plain { cost_bits } => {
            println!("BOS keeps plain packing ({cost_bits} bits)");
        }
        Solution::Separated { sep, cost_bits } => {
            let eval = block.evaluate(sep);
            println!(
                "BOS separation   : xl = {:?}, xu = {:?}  →  {cost_bits} bits",
                sep.xl, sep.xu
            );
            println!(
                "                   {} lower / {} center / {} upper, widths α={} β={} γ={}",
                eval.nl, eval.nc, eval.nu, eval.alpha, eval.beta, eval.gamma
            );
        }
    }

    // Encode, decode, verify.
    let mut buf = Vec::new();
    codec.encode(&values, &mut buf);
    let mut decoded = Vec::new();
    let mut pos = 0;
    bos_repro::bos::decode(&buf, &mut pos, &mut decoded).expect("self-describing stream");
    assert_eq!(decoded, values);
    println!("encoded block    : {} bytes, decodes losslessly", buf.len());

    // On a realistic block the separation pays off dramatically.
    let mut sensor: Vec<i64> = (0..1024).map(|i| 500 + (i % 16)).collect();
    sensor[100] = 1 << 30; // a glitch
    sensor[900] = -42; // a dropout
    let plain_bits = SortedBlock::from_values(&sensor).plain_cost_bits();
    let bos_bits = codec.solve(&sensor).cost_bits();
    println!(
        "1024-value block with 2 outliers: plain {} bits vs BOS {} bits ({:.1}x)",
        plain_bits,
        bos_bits,
        plain_bits as f64 / bos_bits as f64
    );
}
