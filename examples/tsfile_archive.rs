//! Building a TsFile-lite archive: many named series, per-series encoding
//! choice, CRC-verified reads — the miniature of BOS's Apache TsFile
//! deployment (paper §VII).
//!
//! Run with: `cargo run --release --example tsfile_archive`

use bos_repro::datasets::all_datasets;
use bos_repro::tsfile::{EncodingChoice, TsFileReader, TsFileWriter};

fn main() {
    let sets = all_datasets(20_000);
    let raw_bytes: usize = sets.iter().map(|d| d.uncompressed_bytes()).sum();

    // Write every dataset as one series, letting `auto_for` choose the
    // outer encoding per series (BOS-B inside each).
    let mut writer = TsFileWriter::new();
    println!("{:<20} {:>8}  chosen encoding", "series", "values");
    for dataset in &sets {
        let ints = dataset.as_scaled_ints();
        let choice = EncodingChoice::auto_for(&ints);
        println!("{:<20} {:>8}  {}", dataset.abbr, ints.len(), choice.label());
        writer
            .add_int_series(dataset.name, &ints, choice)
            .expect("unique names");
    }
    let file = writer.finish();
    println!(
        "\narchive: {} bytes for {} raw bytes  →  ratio {:.2}",
        file.len(),
        raw_bytes,
        raw_bytes as f64 / file.len() as f64
    );

    // Random access by name, with checksum verification on read.
    let reader = TsFileReader::open(&file).expect("valid archive");
    let cs = reader.read_ints("CS-Sensors").expect("present and intact");
    assert_eq!(cs, sets[3].as_scaled_ints());
    println!(
        "read back CS-Sensors: {} values, first = {:?}",
        cs.len(),
        &cs[..4.min(cs.len())]
    );

    // Compare against the same archive written without BOS.
    let mut bp_writer = TsFileWriter::new();
    for dataset in &sets {
        bp_writer
            .add_int_series(
                dataset.name,
                &dataset.as_scaled_ints(),
                EncodingChoice::TS2DIFF_BP,
            )
            .expect("unique names");
    }
    let bp_file = bp_writer.finish();
    println!(
        "same archive with plain bit-packing: {} bytes ({:.1}% larger)",
        bp_file.len(),
        (bp_file.len() as f64 / file.len() as f64 - 1.0) * 100.0
    );
}
