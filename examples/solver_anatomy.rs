//! Anatomy of the three solvers: run BOS-V, BOS-B and BOS-M on the same
//! block and inspect the thresholds, part sizes and widths each one picks
//! — plus the k-part generalization from 1 to 7 parts (Figure 14's
//! machinery).
//!
//! Run with: `cargo run --release --example solver_anatomy`

use bos_repro::bos::kpart::solve_kpart;
use bos_repro::bos::{BosCodec, Solution, SolverKind, SortedBlock};
use bos_repro::datasets::synth::Synth;

fn main() {
    // A bell-shaped block with asymmetric outliers, like a delta stream.
    let mut s = Synth::new(2024);
    let mut values: Vec<i64> = (0..2048).map(|_| s.gaussian(700.0, 35.0) as i64).collect();
    for i in (0..values.len()).step_by(120) {
        values[i] += s.lognormal(6.0, 1.0) as i64; // upper outliers
    }
    for i in (60..values.len()).step_by(350) {
        values[i] -= 500; // lower outliers
    }

    let block = SortedBlock::from_values(&values);
    println!(
        "block: n = {}, range [{}, {}], plain packing {} bits",
        block.n(),
        block.xmin(),
        block.xmax(),
        block.plain_cost_bits()
    );
    println!();
    println!(
        "{:<8} {:>10} {:>10} {:>6} {:>6} {:>6} {:>4} {:>4} {:>4} {:>10}",
        "solver", "xl", "xu", "nl", "nc", "nu", "α", "β", "γ", "bits"
    );

    for kind in [SolverKind::Value, SolverKind::BitWidth, SolverKind::Median] {
        let codec = BosCodec::new(kind);
        match codec.solve(&values) {
            Solution::Plain { cost_bits } => {
                println!(
                    "{:<8} {:>10} {:>10} (plain, {cost_bits} bits)",
                    codec.name(),
                    "-",
                    "-"
                );
            }
            Solution::Separated { sep, cost_bits } => {
                let e = block.evaluate(sep);
                println!(
                    "{:<8} {:>10} {:>10} {:>6} {:>6} {:>6} {:>4} {:>4} {:>4} {:>10}",
                    codec.name(),
                    sep.xl.map_or("-".into(), |v| v.to_string()),
                    sep.xu.map_or("-".into(), |v| v.to_string()),
                    e.nl,
                    e.nc,
                    e.nu,
                    e.alpha,
                    e.beta,
                    e.gamma,
                    cost_bits
                );
            }
        }
    }

    // BOS-V and BOS-B must agree bit-for-bit (Propositions 2 & 3).
    let v = BosCodec::new(SolverKind::Value).solve(&values).cost_bits();
    let b = BosCodec::new(SolverKind::BitWidth)
        .solve(&values)
        .cost_bits();
    assert_eq!(v, b, "exact solvers disagree");
    println!("\nBOS-V == BOS-B: {v} bits (optimality cross-check passed)");

    println!("\nk-part generalization (Figure 14):");
    println!("{:>3} {:>12} {:>9}", "k", "bits", "vs k=1");
    let base = solve_kpart(&block, 1).cost_bits;
    for k in 1..=7 {
        let c = solve_kpart(&block, k).cost_bits;
        println!("{k:>3} {c:>12} {:>8.1}%", 100.0 * c as f64 / base as f64);
    }
    println!("\nThe jump from 1 → 3 parts captures nearly all of the gain,");
    println!("matching the paper's recommendation of 3 parts.");
}
