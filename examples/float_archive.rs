//! Archiving float telemetry: native float codecs (Gorilla, Chimp, Elf,
//! BUFF) versus the scaled-integer route (TS2DIFF + BOS-B), as in the
//! "datasets with float" columns of Figure 10a.
//!
//! Run with: `cargo run --release --example float_archive`

use bos_repro::datasets::{generate, SeriesData};
use bos_repro::encodings::{OuterKind, PackerKind, Pipeline};
use bos_repro::floatcodec::all_codecs;

fn main() {
    for abbr in ["GM", "NS", "UE", "YE"] {
        let dataset = generate(abbr, 30_000).expect("known dataset");
        let SeriesData::Floats { values, .. } = &dataset.data else {
            unreachable!("float registry entry");
        };
        let raw = dataset.uncompressed_bytes() as f64;
        println!("\n{} ({} float values)", dataset.name, values.len());
        println!("  {:<22} {:>8}", "method", "ratio");

        for codec in all_codecs() {
            let mut buf = Vec::new();
            codec.encode(values, &mut buf);
            let mut out = Vec::new();
            let mut pos = 0;
            codec.decode(&buf, &mut pos, &mut out).expect("decode");
            assert_eq!(out.len(), values.len());
            for (a, b) in values.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} lossy!", codec.name());
            }
            println!("  {:<22} {:>8.2}", codec.name(), raw / buf.len() as f64);
        }

        // Integer route: ×10^p scaling then TS2DIFF+BOS-B.
        for packer in [PackerKind::Bp, PackerKind::FastPfor, PackerKind::BosB] {
            let pipeline = Pipeline::new(OuterKind::Ts2Diff, packer);
            let mut buf = Vec::new();
            pipeline
                .encode_f64(values, &mut buf)
                .expect("datasets are generated with fixed decimal precision");
            let mut out = Vec::new();
            let mut pos = 0;
            pipeline
                .decode_f64(&buf, &mut pos, &mut out)
                .expect("decode");
            assert_eq!(&out, values, "{} lossy!", pipeline.label());
            println!("  {:<22} {:>8.2}", pipeline.label(), raw / buf.len() as f64);
        }
    }

    println!("\nScaled-integer encoding with BOS usually beats XOR-family float");
    println!("codecs on fixed-precision telemetry — the paper's float columns.");
}
