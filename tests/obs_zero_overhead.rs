//! Zero-overhead guarantees for the `obs` layer (PR 4).
//!
//! Two claims, one per build state:
//!
//! * obs **on**: flipping the runtime kill-switch must not change a single
//!   encoded byte — instrumentation observes, it never participates.
//! * obs **off** (`--no-default-features`): the registry is a no-op; a
//!   full encode pass leaves the snapshot completely empty.
//!
//! The kill-switch is process-global, so the toggle test owns it alone in
//! this binary (integration-test files are separate processes).

use bitpack::codec::{decode_blocks, encode_blocks_parallel};
use bos::{BosCodec, SolverKind};
use encodings::{OuterKind, PackerKind, Pipeline};

/// Deterministic mixed series: runs, drift, and two-sided outliers.
fn series(n: usize) -> Vec<i64> {
    (0..n as i64)
        .map(|i| match i % 97 {
            0 => 1 << 44,
            1 => -(1 << 44),
            k if k < 30 => 4000,
            k => 4000 + (k % 17),
        })
        .collect()
}

/// Encodes through the instrumented driver, on then off, and demands
/// byte-identical output plus identical decodes.
fn assert_toggle_invariant<C: bitpack::BlockCodec + Sync>(codec: &C, values: &[i64]) {
    let mut on = Vec::new();
    obs::set_enabled(true);
    encode_blocks_parallel(codec, values, 256, 2, &mut on).expect("encode");
    let mut off = Vec::new();
    obs::set_enabled(false);
    encode_blocks_parallel(codec, values, 256, 2, &mut off).expect("encode");
    obs::set_enabled(true);
    assert_eq!(
        on,
        off,
        "{}: kill-switch changed encoded bytes",
        codec.name()
    );
    assert_eq!(
        decode_blocks(codec, &on).expect("decode"),
        values,
        "{}: roundtrip",
        codec.name()
    );
}

#[test]
fn runtime_toggle_never_changes_bytes() {
    if !obs::enabled() {
        return; // feature off: there is no switch to toggle
    }
    let values = series(3000);
    for kind in PackerKind::ALL {
        match kind {
            PackerKind::Bp => assert_toggle_invariant(&pfor::BpCodec::new(), &values),
            PackerKind::Pfor => assert_toggle_invariant(&pfor::PforCodec::new(), &values),
            PackerKind::NewPfor => assert_toggle_invariant(&pfor::NewPforCodec::new(), &values),
            PackerKind::OptPfor => assert_toggle_invariant(&pfor::OptPforCodec::new(), &values),
            PackerKind::FastPfor => assert_toggle_invariant(&pfor::FastPforCodec::new(), &values),
            PackerKind::SimplePfor => {
                assert_toggle_invariant(&pfor::SimplePforCodec::new(), &values)
            }
            PackerKind::BosV => assert_toggle_invariant(&BosCodec::new(SolverKind::Value), &values),
            PackerKind::BosB => {
                assert_toggle_invariant(&BosCodec::new(SolverKind::BitWidth), &values)
            }
            PackerKind::BosM => {
                assert_toggle_invariant(&BosCodec::new(SolverKind::Median), &values)
            }
        }
    }

    // Full pipelines too: outer encodings feed the same instrumented
    // codecs, so the invariant must hold end to end.
    for outer in OuterKind::ALL {
        let p = Pipeline::new(outer, PackerKind::BosB);
        let mut on = Vec::new();
        obs::set_enabled(true);
        p.encode(&values, &mut on);
        let mut off = Vec::new();
        obs::set_enabled(false);
        p.encode(&values, &mut off);
        obs::set_enabled(true);
        assert_eq!(on, off, "{}: kill-switch changed encoded bytes", p.label());
    }
}

#[test]
fn feature_off_build_has_empty_registry() {
    if obs::enabled() {
        return; // covered by the toggle test in the obs-on build
    }
    let values = series(2000);
    let codec = BosCodec::new(SolverKind::Median);
    let mut buf = Vec::new();
    encode_blocks_parallel(&codec, &values, 256, 2, &mut buf).expect("encode");
    assert_eq!(decode_blocks(&codec, &buf).expect("decode"), values);
    let snap = obs::snapshot();
    assert!(
        snap.is_empty(),
        "no-op build must register nothing, got {} counters / {} histograms / {} spans",
        snap.counters.len(),
        snap.histograms.len(),
        snap.spans.len()
    );
    assert!(!snap.enabled);
}
