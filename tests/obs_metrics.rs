//! Property tests for the `obs` metrics layer (PR 4): the codec meters in
//! the shared block driver must agree exactly with what was encoded.
//!
//! Everything lives in one `#[test]` because the metric assertions are
//! snapshot *deltas* on shared labels — a second test driving the same
//! codecs in a parallel thread would race the deltas. Integration-test
//! files are separate processes, so other test binaries can't interfere.

use bitpack::codec::{decode_blocks, encode_blocks_parallel};
use bitpack::zigzag::write_varint;
use bos::{BosCodec, SolverKind};
use encodings::PackerKind;
use proptest::prelude::*;
use proptest::TestCaseError;

/// Mixed-magnitude series: a tight center with sparse two-sided outliers,
/// the regime where every codec in the grid takes a different layout path.
fn series() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        prop_oneof![
            8 => 0i64..200,
            1 => -1_000_000_000i64..1_000_000_000,
        ],
        0..600,
    )
}

/// Counter/histogram deltas for one codec label between two snapshots.
struct Delta {
    blocks_encoded: u64,
    values_encoded: u64,
    bytes_encoded: u64,
    blocks_decoded: u64,
    values_decoded: u64,
    bytes_decoded: u64,
    width_samples: u64,
}

fn delta(before: &obs::Snapshot, after: &obs::Snapshot, label: &str) -> Delta {
    let c = |field: &str| {
        after.counter(&format!("codec.{label}.{field}"))
            - before.counter(&format!("codec.{label}.{field}"))
    };
    let h = |snap: &obs::Snapshot| {
        snap.histogram(&format!("codec.{label}.block_width"))
            .map_or(0, |h| h.count)
    };
    Delta {
        blocks_encoded: c("blocks_encoded"),
        values_encoded: c("values_encoded"),
        bytes_encoded: c("bytes_encoded"),
        blocks_decoded: c("blocks_decoded"),
        values_decoded: c("values_decoded"),
        bytes_decoded: c("bytes_decoded"),
        width_samples: h(after) - h(before),
    }
}

/// Drives one concrete codec through the instrumented driver and checks
/// the metric deltas against ground truth.
fn check<C: bitpack::BlockCodec + Sync>(
    codec: &C,
    values: &[i64],
    block: usize,
) -> Result<(), TestCaseError> {
    let label = codec.name();
    let before = obs::snapshot();
    let mut buf = Vec::new();
    encode_blocks_parallel(codec, values, block, 2, &mut buf).expect("encode");
    let decoded = decode_blocks(codec, &buf).expect("decode");
    prop_assert_eq!(&decoded, values, "{} roundtrip", label);
    let after = obs::snapshot();

    let d = delta(&before, &after, label);
    let n_blocks = values.len().div_ceil(block) as u64;
    let mut header = Vec::new();
    write_varint(&mut header, n_blocks);
    let payload = (buf.len() - header.len()) as u64;

    prop_assert_eq!(d.blocks_encoded, n_blocks, "{} blocks_encoded", label);
    prop_assert_eq!(d.blocks_decoded, n_blocks, "{} blocks_decoded", label);
    prop_assert_eq!(
        d.values_encoded,
        values.len() as u64,
        "{} values_encoded",
        label
    );
    prop_assert_eq!(
        d.values_decoded,
        values.len() as u64,
        "{} values_decoded",
        label
    );
    prop_assert_eq!(d.bytes_encoded, payload, "{} bytes_encoded", label);
    prop_assert_eq!(d.bytes_decoded, payload, "{} bytes_decoded", label);
    prop_assert_eq!(d.width_samples, n_blocks, "{} width histogram count", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn driver_meters_agree_with_ground_truth(
        values in series(),
        block in 64usize..=256,
    ) {
        if !obs::enabled() {
            return Ok(()); // feature off: nothing to meter
        }
        for kind in PackerKind::ALL {
            // `PackerKind::build` returns a non-Sync box; the parallel
            // driver wants `Sync`, so dispatch to the concrete codecs.
            match kind {
                PackerKind::Bp => check(&pfor::BpCodec::new(), &values, block)?,
                PackerKind::Pfor => check(&pfor::PforCodec::new(), &values, block)?,
                PackerKind::NewPfor => check(&pfor::NewPforCodec::new(), &values, block)?,
                PackerKind::OptPfor => check(&pfor::OptPforCodec::new(), &values, block)?,
                PackerKind::FastPfor => check(&pfor::FastPforCodec::new(), &values, block)?,
                PackerKind::SimplePfor => check(&pfor::SimplePforCodec::new(), &values, block)?,
                PackerKind::BosV => check(&BosCodec::new(SolverKind::Value), &values, block)?,
                PackerKind::BosB => check(&BosCodec::new(SolverKind::BitWidth), &values, block)?,
                PackerKind::BosM => check(&BosCodec::new(SolverKind::Median), &values, block)?,
            }
        }
    }
}
