//! Property tests for the `obs` metrics layer (PR 4): the codec meters in
//! the shared block driver must agree exactly with what was encoded.
//!
//! The metric assertions are snapshot *deltas* on shared labels and the
//! kill-switch test flips the global runtime toggle, so the tests in
//! this binary serialize on [`OBS_STATE`] — a concurrent test would race
//! the deltas or observe the switch mid-flip. Integration-test files are
//! separate processes, so other test binaries can't interfere.

use bitpack::codec::{decode_blocks, encode_blocks_parallel};
use bitpack::zigzag::write_varint;
use bos::{BosCodec, SolverKind};
use encodings::PackerKind;
use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::Mutex;

/// Serializes the tests in this binary (see the module docs). The
/// proptest below locks per case — each case's before/after snapshots
/// happen entirely under one hold — and the kill-switch test locks once
/// and restores `set_enabled(true)` before releasing.
static OBS_STATE: Mutex<()> = Mutex::new(());

/// Lock that survives a poisoned mutex (a prior panicking test must not
/// mask this one's result).
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Completed-instance count for one span label (0 when never recorded).
fn span_count(name: &str) -> u64 {
    obs::snapshot().span(name).map_or(0, |s| s.count)
}

/// Satellite regression (PR 9): toggling the runtime kill-switch between
/// span open and drop must not panic, corrupt self-time accounting, or
/// leak thread-local stack frames.
#[test]
fn kill_switch_mid_span_keeps_accounting_sane() {
    if !obs::enabled() {
        return; // feature off: spans are compile-time inert
    }
    let _guard = obs_lock();
    obs::set_enabled(true);

    // Disable while a span is open: an inner guard opened during the off
    // window is inert (it must not pop the outer frame on drop), and the
    // outer span still records exactly once after re-enabling.
    let outer_before = span_count("test.killswitch.outer");
    {
        let _outer = obs::span("test.killswitch.outer");
        obs::set_enabled(false);
        {
            let _inner = obs::span("test.killswitch.inner");
        }
        obs::set_enabled(true);
    }
    assert_eq!(
        span_count("test.killswitch.outer"),
        outer_before + 1,
        "outer span must record exactly once"
    );
    assert_eq!(
        span_count("test.killswitch.inner"),
        0,
        "inner span opened while disabled must stay unrecorded"
    );
    let outer = obs::snapshot();
    let outer = outer.span("test.killswitch.outer").expect("outer recorded");
    assert_eq!(
        outer.self_ns, outer.total_ns,
        "the inert inner span must not siphon child time from the outer"
    );

    // Enabled at open, disabled at drop: the frame was pushed, so it must
    // still be popped and recorded — otherwise it leaks on the stack and
    // corrupts every later span's depth.
    {
        let _g = obs::span("test.killswitch.drop_disabled");
        obs::set_enabled(false);
    }
    obs::set_enabled(true);
    assert_eq!(
        span_count("test.killswitch.drop_disabled"),
        1,
        "a frame pushed while enabled must be recorded on drop"
    );

    // The stack is back to level ground: a fresh span nests nothing and
    // records once with self == total.
    let fresh_before = span_count("test.killswitch.fresh");
    {
        let _g = obs::span("test.killswitch.fresh");
    }
    let snap = obs::snapshot();
    let fresh = snap.span("test.killswitch.fresh").expect("fresh recorded");
    assert_eq!(fresh.count, fresh_before + 1);
    assert_eq!(
        fresh.self_ns, fresh.total_ns,
        "a leaked frame would show up as phantom child time here"
    );
}

/// Mixed-magnitude series: a tight center with sparse two-sided outliers,
/// the regime where every codec in the grid takes a different layout path.
fn series() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        prop_oneof![
            8 => 0i64..200,
            1 => -1_000_000_000i64..1_000_000_000,
        ],
        0..600,
    )
}

/// Counter/histogram deltas for one codec label between two snapshots.
struct Delta {
    blocks_encoded: u64,
    values_encoded: u64,
    bytes_encoded: u64,
    blocks_decoded: u64,
    values_decoded: u64,
    bytes_decoded: u64,
    width_samples: u64,
}

fn delta(before: &obs::Snapshot, after: &obs::Snapshot, label: &str) -> Delta {
    let c = |field: &str| {
        after.counter(&format!("codec.{label}.{field}"))
            - before.counter(&format!("codec.{label}.{field}"))
    };
    let h = |snap: &obs::Snapshot| {
        snap.histogram(&format!("codec.{label}.block_width"))
            .map_or(0, |h| h.count)
    };
    Delta {
        blocks_encoded: c("blocks_encoded"),
        values_encoded: c("values_encoded"),
        bytes_encoded: c("bytes_encoded"),
        blocks_decoded: c("blocks_decoded"),
        values_decoded: c("values_decoded"),
        bytes_decoded: c("bytes_decoded"),
        width_samples: h(after) - h(before),
    }
}

/// Drives one concrete codec through the instrumented driver and checks
/// the metric deltas against ground truth.
fn check<C: bitpack::BlockCodec + Sync>(
    codec: &C,
    values: &[i64],
    block: usize,
) -> Result<(), TestCaseError> {
    let label = codec.name();
    let before = obs::snapshot();
    let mut buf = Vec::new();
    encode_blocks_parallel(codec, values, block, 2, &mut buf).expect("encode");
    let decoded = decode_blocks(codec, &buf).expect("decode");
    prop_assert_eq!(&decoded, values, "{} roundtrip", label);
    let after = obs::snapshot();

    let d = delta(&before, &after, label);
    let n_blocks = values.len().div_ceil(block) as u64;
    let mut header = Vec::new();
    write_varint(&mut header, n_blocks);
    let payload = (buf.len() - header.len()) as u64;

    prop_assert_eq!(d.blocks_encoded, n_blocks, "{} blocks_encoded", label);
    prop_assert_eq!(d.blocks_decoded, n_blocks, "{} blocks_decoded", label);
    prop_assert_eq!(
        d.values_encoded,
        values.len() as u64,
        "{} values_encoded",
        label
    );
    prop_assert_eq!(
        d.values_decoded,
        values.len() as u64,
        "{} values_decoded",
        label
    );
    prop_assert_eq!(d.bytes_encoded, payload, "{} bytes_encoded", label);
    prop_assert_eq!(d.bytes_decoded, payload, "{} bytes_decoded", label);
    prop_assert_eq!(d.width_samples, n_blocks, "{} width histogram count", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn driver_meters_agree_with_ground_truth(
        values in series(),
        block in 64usize..=256,
    ) {
        if !obs::enabled() {
            return Ok(()); // feature off: nothing to meter
        }
        let _guard = obs_lock();
        for kind in PackerKind::ALL {
            // `PackerKind::build` returns a non-Sync box; the parallel
            // driver wants `Sync`, so dispatch to the concrete codecs.
            match kind {
                PackerKind::Bp => check(&pfor::BpCodec::new(), &values, block)?,
                PackerKind::Pfor => check(&pfor::PforCodec::new(), &values, block)?,
                PackerKind::NewPfor => check(&pfor::NewPforCodec::new(), &values, block)?,
                PackerKind::OptPfor => check(&pfor::OptPforCodec::new(), &values, block)?,
                PackerKind::FastPfor => check(&pfor::FastPforCodec::new(), &values, block)?,
                PackerKind::SimplePfor => check(&pfor::SimplePforCodec::new(), &values, block)?,
                PackerKind::BosV => check(&BosCodec::new(SolverKind::Value), &values, block)?,
                PackerKind::BosB => check(&BosCodec::new(SolverKind::BitWidth), &values, block)?,
                PackerKind::BosM => check(&BosCodec::new(SolverKind::Median), &values, block)?,
            }
        }
    }
}
