//! Cross-crate invariants tying the paper's claims to real data: the
//! exact solvers agree on every dataset block, costs equal encoded bits,
//! and the ablations order correctly.

use bos_repro::bos::kpart::solve_kpart;
use bos_repro::bos::BosCodec;
use bos_repro::bos::{
    BitWidthSolver, MedianSolver, Solution, Solver, SolverKind, SortedBlock, ValueSolver,
};
use bos_repro::datasets::all_datasets;
use bos_repro::encodings::ts2diff::Ts2DiffEncoding;

const N: usize = 6_000;
const BLOCK: usize = 512;

/// Delta blocks from every dataset — the distribution BOS actually sees.
fn real_blocks() -> Vec<Vec<i64>> {
    let mut blocks = Vec::new();
    for dataset in all_datasets(N) {
        let ints = dataset.as_scaled_ints();
        let deltas = Ts2DiffEncoding::<pfor::BpCodec>::deltas(&ints);
        for chunk in deltas.chunks(BLOCK).take(4) {
            blocks.push(chunk.to_vec());
        }
    }
    blocks
}

#[test]
fn bosb_equals_bosv_on_all_dataset_blocks() {
    let v = ValueSolver::new();
    let b = BitWidthSolver::new();
    for block in real_blocks() {
        assert_eq!(
            b.solve_values(&block).cost_bits(),
            v.solve_values(&block).cost_bits(),
            "exact solvers disagree on a real block"
        );
    }
}

#[test]
fn median_is_sandwiched_on_all_dataset_blocks() {
    let b = BitWidthSolver::new();
    let m = MedianSolver::new();
    for block in real_blocks() {
        let opt = b.solve_values(&block).cost_bits();
        let med = m.solve_values(&block).cost_bits();
        let plain = SortedBlock::from_values(&block).plain_cost_bits();
        assert!(
            opt <= med && med <= plain,
            "opt {opt} med {med} plain {plain}"
        );
    }
}

#[test]
fn solver_cost_equals_evaluator_cost_on_real_blocks() {
    for block in real_blocks() {
        let sorted = SortedBlock::from_values(&block);
        for kind in [SolverKind::BitWidth, SolverKind::Median] {
            match BosCodec::new(kind).solve(&block) {
                Solution::Plain { cost_bits } => {
                    assert_eq!(cost_bits, sorted.plain_cost_bits())
                }
                Solution::Separated { sep, cost_bits } => {
                    assert_eq!(sorted.evaluate(sep).cost_bits, cost_bits)
                }
            }
        }
    }
}

#[test]
fn upper_only_ablation_never_beats_full_bos() {
    // Figure 12's premise: restricting the search can only cost bits.
    let full = BitWidthSolver::new();
    let upper = BitWidthSolver::upper_only();
    let mut strictly_better = 0usize;
    let blocks = real_blocks();
    for block in &blocks {
        let f = full.solve_values(block).cost_bits();
        let u = upper.solve_values(block).cost_bits();
        assert!(f <= u, "full {f} > upper-only {u}");
        if f < u {
            strictly_better += 1;
        }
    }
    // And on real delta streams lower outliers do exist, so the full
    // search must win strictly somewhere.
    assert!(strictly_better > 0, "lower outliers never mattered");
}

#[test]
fn kpart_matches_figure14_ordering() {
    for block in real_blocks().into_iter().take(12) {
        if block.is_empty() {
            continue;
        }
        let sorted = SortedBlock::from_values(&block);
        let k1 = solve_kpart(&sorted, 1).cost_bits;
        let k3 = solve_kpart(&sorted, 3).cost_bits;
        let k6 = solve_kpart(&sorted, 6).cost_bits;
        assert!(k3 <= k1);
        assert!(k6 <= k3);
        // The Figure 14 claim: going beyond 3 parts yields little.
        let gain_13 = k1 - k3;
        let gain_36 = k3 - k6;
        if gain_13 > 0 {
            assert!(
                gain_36 * 3 <= gain_13 * 4,
                "3→6 gain {gain_36} suspiciously large vs 1→3 gain {gain_13}"
            );
        }
    }
}

#[test]
fn encoded_streams_are_cross_solver_compatible() {
    // Any BOS stream decodes with the shared decoder regardless of solver.
    for block in real_blocks().into_iter().take(8) {
        let mut buf = Vec::new();
        BosCodec::new(SolverKind::Median).encode(&block, &mut buf);
        BosCodec::new(SolverKind::BitWidth).encode(&block, &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        bos_repro::bos::decode(&buf, &mut pos, &mut out).expect("first");
        bos_repro::bos::decode(&buf, &mut pos, &mut out).expect("second");
        assert_eq!(out.len(), block.len() * 2);
        assert_eq!(&out[..block.len()], &block[..]);
        assert_eq!(&out[block.len()..], &block[..]);
    }
}
