//! Property tests for the store manifest decoder, driven by `faultsim`.
//!
//! The decoder is the first thing `Store::open` runs against bytes a
//! crash may have mangled, so it must be *total*: any input yields a
//! `DecodeOutcome`, never a panic. Three contracts:
//!
//! 1. Arbitrary bytes — with or without a valid magic — decode without
//!    panicking, and the outcome's invariants hold (`valid_bytes` never
//!    exceeds the input; a clean decode consumes every byte).
//! 2. Encode/decode roundtrips exactly, and truncating the encoded log
//!    at any byte recovers a strict prefix of the original records.
//! 3. Bit flips lose only the frames they touch: the surviving records
//!    are a subsequence of the original log (CRC resynchronization
//!    skips over the damage), and re-decoding the file truncated at
//!    `valid_bytes` reproduces the same records and skip count — the
//!    normalization recovery writes back is stable.

use bos_repro::faultsim::{Fault, FaultPlan};
use bos_repro::store::manifest::{decode, encode, Record, MAGIC};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(id, order)| Record::FileAdded { id, order }),
        (any::<u64>(), any::<u64>()).prop_map(|(id, records)| Record::FileSealed { id, records }),
        (prop::collection::vec(any::<u64>(), 0..6), any::<u64>())
            .prop_map(|(inputs, output)| Record::CompactionBegin { inputs, output }),
        (prop::collection::vec(any::<u64>(), 0..6), any::<u64>())
            .prop_map(|(inputs, output)| Record::CompactionCommit { inputs, output }),
        any::<u64>().prop_map(|id| Record::RetentionDelete { id }),
    ]
}

fn log_strategy() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(record_strategy(), 1..12)
}

/// True when `sub` appears in `log` in order (not necessarily
/// contiguously) — the strongest claim resynchronization supports:
/// damage drops frames but never reorders or invents them.
fn is_subsequence(log: &[Record], sub: &[Record]) -> bool {
    let mut it = log.iter();
    sub.iter().all(|r| it.any(|l| l == r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // (1) Decode is total on arbitrary bytes.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        with_magic in any::<bool>(),
    ) {
        let mut input = Vec::new();
        if with_magic {
            input.extend_from_slice(MAGIC);
        }
        input.extend_from_slice(&bytes);
        let out = decode(&input);
        prop_assert!(out.valid_bytes <= input.len());
        if !out.torn {
            prop_assert_eq!(out.valid_bytes, input.len(), "clean decode consumes every byte");
        }
    }

    // (2) Roundtrip, and truncation recovers a prefix.
    #[test]
    fn truncated_log_decodes_to_a_prefix(
        log in log_strategy(),
        cut in any::<u64>(),
    ) {
        let bytes = encode(&log);
        let full = decode(&bytes);
        prop_assert_eq!(&full.records, &log);
        prop_assert!(!full.torn);
        prop_assert_eq!(full.skipped_frames, 0);

        let k = cut as usize % (bytes.len() + 1);
        let cut_out = decode(&bytes[..k]);
        prop_assert!(
            log.starts_with(&cut_out.records),
            "truncation at {} must recover a prefix, got {:?}",
            k,
            cut_out.records
        );
        prop_assert!(cut_out.valid_bytes <= k);
    }

    // (3) Bit flips cost only the frames they hit, and the decode is a
    // fixpoint: re-decoding the valid prefix reproduces it.
    #[test]
    fn bit_flips_lose_only_damaged_frames(
        log in log_strategy(),
        count in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut bytes = encode(&log);
        FaultPlan::single(Fault::FlipBits { count }).apply(&mut bytes, seed);
        let out = decode(&bytes);
        prop_assert!(
            is_subsequence(&log, &out.records),
            "recovered records must be an in-order subsequence of the log"
        );

        let again = decode(&bytes[..out.valid_bytes]);
        prop_assert_eq!(&again.records, &out.records, "normalized decode must be stable");
        prop_assert_eq!(again.skipped_frames, out.skipped_frames);
        // valid_bytes == 0 means the magic itself was hit; there is no
        // valid prefix to be un-torn about.
        if out.valid_bytes > 0 {
            prop_assert!(!again.torn, "the valid prefix has no torn tail");
        }
    }
}
