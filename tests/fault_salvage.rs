//! Property tests for the salvage read path, driven by `faultsim`.
//!
//! Three contracts, each over every `PackerKind` operator:
//!
//! 1. Corruption confined to one chunk's payload leaves every *other*
//!    chunk bit-exact under salvage, and the damaged chunk is reported
//!    with its byte range and a `CrcMismatch` reason.
//! 2. Destroying the footer of a fully-written file loses zero chunks:
//!    the rebuilt index covers every series with exact values.
//! 3. No fault plan at any seed panics any decoder — the whole-file
//!    randomized sweep that subsumes the old ad-hoc corruption loops.

use bos_repro::encodings::PackerKind;
use bos_repro::faultsim::{drop_exact, Fault, FaultPlan};
use bos_repro::tsfile::{EncodingChoice, SkipReason, TsFileReader, TsFileWriter};
use proptest::prelude::*;

/// Series shaped like telemetry with rare large outliers: the layout that
/// exercises BOS's separated storage and the PFOR exception paths.
fn series_values(n: usize, salt: i64) -> Vec<i64> {
    (0..n as i64)
        .map(|i| {
            if (i + salt) % 97 == 0 {
                1 << 33
            } else {
                (i * 31 + salt) % 256
            }
        })
        .collect()
}

/// Builds a three-series file with the given operator; returns the bytes
/// and the expected values per series.
fn build_file(packer: PackerKind) -> (Vec<u8>, Vec<Vec<i64>>) {
    let encoding = EncodingChoice {
        outer: bos_repro::encodings::OuterKind::Ts2Diff,
        packer,
    };
    let mut w = TsFileWriter::new();
    let expected: Vec<Vec<i64>> = (0..3).map(|s| series_values(1200, s * 13 + 5)).collect();
    for (s, values) in expected.iter().enumerate() {
        w.add_int_series(&format!("s{s}"), values, encoding)
            .expect("write series");
    }
    (w.finish(), expected)
}

fn packer_strategy() -> impl Strategy<Value = PackerKind> {
    prop::sample::select(PackerKind::ALL.to_vec())
}

/// Whole-file fault plans for the no-panic sweep.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    prop::sample::select(vec![
        FaultPlan::single(Fault::FlipBits { count: 1 }),
        FaultPlan::single(Fault::FlipBits { count: 16 }),
        FaultPlan::single(Fault::GarbageBytes { count: 8 }),
        FaultPlan::single(Fault::GarbageRange { max_len: 128 }),
        FaultPlan::single(Fault::Truncate),
        FaultPlan::single(Fault::TornTail { max_tail: 64 }),
        FaultPlan::single(Fault::DropRange { max_len: 96 }),
        FaultPlan::single(Fault::DestroyTail { count: 40 }),
        FaultPlan::new()
            .with(Fault::FlipBits { count: 4 })
            .with(Fault::GarbageBytes { count: 2 })
            .with(Fault::TornTail { max_tail: 24 }),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // (1) Single-chunk corruption: everything else salvages bit-exact.
    #[test]
    fn corrupting_one_chunk_leaves_the_rest_bit_exact(
        packer in packer_strategy(),
        target in 0usize..3,
        seed in any::<u64>(),
    ) {
        let (bytes, expected) = build_file(packer);
        let (chunk, payload) = {
            let r = TsFileReader::open(&bytes).expect("intact file");
            r.chunk_ranges(&format!("s{target}")).expect("chunk ranges")
        };
        let mut corrupt = bytes.clone();
        FaultPlan::single(Fault::FlipBits { count: 3 })
            .apply_in(&mut corrupt, payload.clone(), seed);
        prop_assume!(corrupt != bytes); // seed drew a no-op flip pattern

        let (r, report) = TsFileReader::open_salvage(&corrupt);
        prop_assert!(!report.footer_rebuilt, "footer was never touched");
        for (s, values) in expected.iter().enumerate() {
            let out = r.read_ints_salvage(&format!("s{s}")).expect("lookup");
            if s == target {
                prop_assert!(out.values.is_empty());
                prop_assert_eq!(out.skipped.len(), 1);
                prop_assert_eq!(out.skipped[0].reason, SkipReason::CrcMismatch);
                let want_name = format!("s{target}");
                prop_assert_eq!(out.skipped[0].series.as_str(), want_name.as_str());
                prop_assert_eq!(out.skipped[0].range.clone(), chunk.clone());
            } else {
                prop_assert_eq!(&out.values, values, "series s{} must be bit-exact", s);
                prop_assert!(out.skipped.is_empty());
            }
        }
    }

    // (2) Footer destruction after a completed finish loses zero chunks.
    #[test]
    fn footer_destruction_loses_no_chunks(
        packer in packer_strategy(),
        seed in any::<u64>(),
    ) {
        let (bytes, expected) = build_file(packer);
        let footer_start = {
            let tail = bytes.len() - 8;
            let off: [u8; 8] = bytes[tail - 8..tail].try_into().expect("trailer");
            u64::from_le_bytes(off) as usize
        };
        let mut corrupt = bytes.clone();
        // Garbage the whole footer + trailer region, then tear part of it
        // off — the body chunks are untouched.
        FaultPlan::single(Fault::GarbageRange { max_len: corrupt.len() })
            .apply_in(&mut corrupt, footer_start..bytes.len(), seed);
        let end = corrupt.len();
        drop_exact(&mut corrupt, footer_start + (seed as usize % 8)..end);

        let (r, report) = TsFileReader::open_salvage(&corrupt);
        prop_assert!(report.footer_rebuilt);
        prop_assert_eq!(r.series().len(), expected.len(), "every chunk reindexed");
        for (s, values) in expected.iter().enumerate() {
            let out = r.read_ints_salvage(&format!("s{s}")).expect("lookup");
            prop_assert_eq!(&out.values, values);
            prop_assert!(out.skipped.is_empty());
        }
    }

    // (3) No fault plan at any seed panics any decoder.
    #[test]
    fn no_fault_plan_panics_any_decoder(
        packer in packer_strategy(),
        plan in plan_strategy(),
        seed in any::<u64>(),
    ) {
        let (bytes, _) = build_file(packer);
        let mut corrupt = bytes.clone();
        plan.apply(&mut corrupt, seed);
        // Strict open must fail cleanly or read cleanly...
        if let Ok(r) = TsFileReader::open(&corrupt) {
            for info in r.series().to_vec() {
                let _ = r.read_ints(&info.name);
                let _ = r.read_floats(&info.name);
            }
        }
        // ...and salvage must degrade, never panic, on the same bytes.
        let (r, _report) = TsFileReader::open_salvage(&corrupt);
        for info in r.series().to_vec() {
            if info.is_float {
                let _ = r.read_floats_salvage(&info.name);
            } else {
                let out = r.read_ints_salvage(&info.name).expect("lookup by index");
                for skip in &out.skipped {
                    prop_assert!(skip.range.start <= skip.range.end);
                }
            }
        }
    }
}
