//! End-to-end storage-stack integration: datasets → TsFile archive →
//! read-back → query scans, mirroring the paper's deployment story
//! (BOS inside TsFile, §VII; query cost, Figure 11).

use bos_repro::bos::stream::StreamEncoder;
use bos_repro::bos::SolverKind;
use bos_repro::datasets::{all_datasets, generate};
use bos_repro::query::Scanner;
use bos_repro::tsfile::{EncodingChoice, TsFileReader, TsFileWriter};

#[test]
fn archive_all_datasets_and_read_back() {
    let sets = all_datasets(6_000);
    let mut w = TsFileWriter::new();
    for d in &sets {
        w.add_int_series(
            d.name,
            &d.as_scaled_ints(),
            EncodingChoice::auto_for(&d.as_scaled_ints()),
        )
        .unwrap();
    }
    let bytes = w.finish();
    let raw: usize = sets.iter().map(|d| d.uncompressed_bytes()).sum();
    assert!(
        bytes.len() * 3 < raw,
        "archive {} vs raw {raw}",
        bytes.len()
    );

    let r = TsFileReader::open(&bytes).unwrap();
    assert_eq!(r.series().len(), sets.len());
    for d in &sets {
        assert_eq!(
            r.read_ints(d.name).unwrap(),
            d.as_scaled_ints(),
            "{}",
            d.abbr
        );
    }
}

#[test]
fn bos_archives_are_smaller_than_bp_archives() {
    let sets = all_datasets(6_000);
    let size_with = |enc: EncodingChoice| {
        let mut w = TsFileWriter::new();
        for d in &sets {
            w.add_int_series(d.name, &d.as_scaled_ints(), enc).unwrap();
        }
        w.finish().len()
    };
    let bos = size_with(EncodingChoice::TS2DIFF_BOS);
    let bp = size_with(EncodingChoice::TS2DIFF_BP);
    assert!(bos < bp, "bos {bos} vs bp {bp}");
}

#[test]
fn timed_series_through_the_stack() {
    let values = generate("TF", 8_000).expect("dataset").as_scaled_ints();
    let points: Vec<(i64, i64)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (1_700_000_000_000 + (i as i64) * 500, v))
        .collect();
    let mut w = TsFileWriter::new();
    w.add_timed_series("vehicle.fuel", &points, EncodingChoice::TS2DIFF_BOS)
        .unwrap();
    let bytes = w.finish();
    let r = TsFileReader::open(&bytes).unwrap();
    assert_eq!(r.read_timed_series("vehicle.fuel").unwrap(), points);
}

#[test]
fn scanner_answers_match_bruteforce_on_every_dataset() {
    for d in all_datasets(5_000) {
        let ints = d.as_scaled_ints();
        let mut stream = Vec::new();
        StreamEncoder::new(SolverKind::BitWidth, 1024).encode(&ints, &mut stream);
        let scanner = Scanner::open(&stream).unwrap();
        assert_eq!(
            scanner.min().unwrap(),
            ints.iter().copied().min(),
            "{}",
            d.abbr
        );
        assert_eq!(
            scanner.max().unwrap().0,
            ints.iter().copied().max(),
            "{}",
            d.abbr
        );
        assert_eq!(
            scanner.sum().unwrap(),
            ints.iter().map(|&v| v as i128).sum::<i128>(),
            "{}",
            d.abbr
        );
        // A mid-range predicate.
        let lo = ints.iter().copied().min().unwrap_or(0);
        let hi = lo + (ints.iter().copied().max().unwrap_or(0) - lo) / 3;
        assert_eq!(
            scanner.count_in_range(lo, hi).unwrap(),
            ints.iter().filter(|&&v| v >= lo && v <= hi).count(),
            "{}",
            d.abbr
        );
    }
}

#[test]
fn parallel_and_sequential_streams_are_interchangeable() {
    let ints = generate("EE", 20_000).expect("dataset").as_scaled_ints();
    let enc = StreamEncoder::new(SolverKind::BitWidth, 1024);
    let mut seq = Vec::new();
    enc.encode(&ints, &mut seq);
    let mut par = Vec::new();
    enc.encode_parallel(&ints, 4, &mut par).expect("encode");
    assert_eq!(seq, par);
    let scanner = Scanner::open(&par).unwrap();
    assert_eq!(scanner.materialize().unwrap(), ints);
}
