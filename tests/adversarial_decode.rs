//! Adversarial property tests for the typed-error decode paths.
//!
//! Complements `failure_injection.rs` (deterministic corruption sweeps)
//! with randomized attacks: arbitrary garbage, truncations strictly inside
//! the consumed region, and random single-bit flips. The contract under
//! test is the `DecodeError` conversion: a malformed buffer must surface
//! as `Err(DecodeError)` — never a panic, never an out-of-bounds access.
//! The `xtask lint` no-panic rule keeps the sources honest statically;
//! these tests check the same promise dynamically.

use bos_repro::bitpack::{simple8b, DecodeError};
use bos_repro::bos::format::{decode_block, encode_block};
use bos_repro::bos::BitWidthSolver;
use bos_repro::pfor::{self, Codec};
use bos_repro::tsfile::{EncodingChoice, TsFileReader, TsFileWriter};
use proptest::prelude::*;

type V1Encode = fn(&[i64], &mut Vec<u8>);

/// The three codecs migrated to the word-packed v2 layout, each paired
/// with the frozen v1 encoder whose payloads v2 must *reject*.
fn migrated_codecs() -> Vec<(Box<dyn Codec>, V1Encode)> {
    vec![
        (
            Box::new(pfor::PforCodec::new()),
            pfor::v1::encode_pfor_v1 as V1Encode,
        ),
        (
            Box::new(pfor::FastPforCodec::new()),
            pfor::v1::encode_fastpfor_v1,
        ),
        (
            Box::new(pfor::SimplePforCodec::new()),
            pfor::v1::encode_simplepfor_v1,
        ),
    ]
}

/// Blocks with a tight center and rare large outliers — the shape that
/// makes BOS choose the separated mode, whose decode path has the most
/// header fields to corrupt.
fn outlier_blocks() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        prop_oneof![
            8 => 0i64..64,
            1 => -1_000_000i64..0,
            1 => 1_000_000i64..2_000_000
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // --- bos::format::decode_block -------------------------------------

    #[test]
    fn decode_block_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut out = Vec::new();
        let mut pos = 0;
        // Garbage may happen to parse (e.g. varint n = 0); it must never
        // panic or index out of bounds.
        let _ = decode_block(&bytes, &mut pos, &mut out);
        prop_assert!(pos <= bytes.len());
    }

    #[test]
    fn decode_block_errors_on_truncation(values in outlier_blocks(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        encode_block(&values, &BitWidthSolver::new(), &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        decode_block(&buf, &mut pos, &mut out).expect("intact block");
        prop_assert_eq!(&out, &values);
        let consumed = pos;
        // Any strict prefix of the consumed bytes is missing data the
        // header promised, so decode must fail with a typed error.
        let cut = ((consumed as f64) * frac) as usize; // < consumed
        let mut out = Vec::new();
        let mut pos = 0;
        prop_assert!(decode_block(&buf[..cut], &mut pos, &mut out).is_err());
    }

    #[test]
    fn decode_block_survives_bit_flips(
        values in outlier_blocks(),
        at_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut buf = Vec::new();
        encode_block(&values, &BitWidthSolver::new(), &mut buf);
        let at = ((buf.len() as f64) * at_frac) as usize % buf.len();
        buf[at] ^= 1u8 << bit;
        let mut out = Vec::new();
        let mut pos = 0;
        // No checksums at this layer: success with wrong data is allowed,
        // panicking is not.
        let _ = decode_block(&buf, &mut pos, &mut out);
        prop_assert!(pos <= buf.len());
    }

    // --- the word-packed v2 PFOR family ---------------------------------

    #[test]
    fn pfor_v2_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        for (codec, _) in migrated_codecs() {
            let mut out = Vec::new();
            let mut pos = 0;
            let _ = codec.decode(&bytes, &mut pos, &mut out);
            prop_assert!(pos <= bytes.len());
        }
    }

    #[test]
    fn pfor_v2_errors_on_truncation(values in outlier_blocks(), frac in 0.0f64..1.0) {
        for (codec, _) in migrated_codecs() {
            let mut buf = Vec::new();
            codec.encode(&values, &mut buf);
            let mut out = Vec::new();
            let mut pos = 0;
            codec.decode(&buf, &mut pos, &mut out).expect("intact block");
            prop_assert_eq!(&out, &values);
            let cut = ((pos as f64) * frac) as usize; // strict prefix
            let mut out = Vec::new();
            let mut pos = 0;
            prop_assert!(
                codec.decode(&buf[..cut], &mut pos, &mut out).is_err(),
                "{} accepted a truncated payload", codec.name()
            );
        }
    }

    #[test]
    fn pfor_v2_survives_bit_flips(
        values in outlier_blocks(),
        at_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        for (codec, _) in migrated_codecs() {
            let mut buf = Vec::new();
            codec.encode(&values, &mut buf);
            let at = ((buf.len() as f64) * at_frac) as usize % buf.len();
            buf[at] ^= 1u8 << bit;
            let mut out = Vec::new();
            let mut pos = 0;
            // No checksums at this layer: success with wrong data is
            // allowed, panicking is not.
            let _ = codec.decode(&buf, &mut pos, &mut out);
            prop_assert!(pos <= buf.len());
        }
    }

    #[test]
    fn pfor_v1_payloads_rejected_with_typed_error(values in outlier_blocks()) {
        // Pin the minimum to 0 so the v1 header's zigzag-min byte is 0 and
        // cannot alias the v2 version byte (zigzag(1) == 2 would).
        let mut values = values;
        values.push(0);
        let values: Vec<i64> = values.iter().map(|v| v.abs()).collect();
        for (codec, encode_v1) in migrated_codecs() {
            let mut buf = Vec::new();
            encode_v1(&values, &mut buf);
            let mut out = Vec::new();
            let mut pos = 0;
            prop_assert_eq!(
                codec.decode(&buf, &mut pos, &mut out),
                Err(DecodeError::BadModeByte { mode: 0 }),
                "{} must reject v1 bit-serial payloads", codec.name()
            );
        }
    }

    // --- bitpack::simple8b ---------------------------------------------

    #[test]
    fn simple8b_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut out = Vec::new();
        let mut pos = 0;
        let _ = simple8b::decode(&bytes, &mut pos, &mut out);
        prop_assert!(pos <= bytes.len());
    }

    #[test]
    fn simple8b_errors_on_truncation(
        values in prop::collection::vec(0u64..(1 << 50), 1..300),
        frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        simple8b::encode(&values, &mut buf).expect("values fit 60 bits");
        let mut out = Vec::new();
        let mut pos = 0;
        simple8b::decode(&buf, &mut pos, &mut out).expect("intact stream");
        prop_assert_eq!(&out, &values);
        let cut = ((pos as f64) * frac) as usize; // strict prefix
        let mut out = Vec::new();
        let mut pos = 0;
        prop_assert!(simple8b::decode(&buf[..cut], &mut pos, &mut out).is_err());
    }

    // --- tsfile reader ---------------------------------------------------

    #[test]
    fn tsfile_open_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(r) = TsFileReader::open(&bytes) {
            // A parseable footer in garbage is wildly unlikely but legal;
            // reading any advertised series must still not panic.
            for s in r.series().to_vec() {
                let _ = r.read_ints(&s.name);
            }
        }
    }

    #[test]
    fn tsfile_errors_on_truncation(values in outlier_blocks(), frac in 0.0f64..1.0) {
        let mut w = TsFileWriter::new();
        w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BOS).expect("write");
        let bytes = w.finish();
        let cut = ((bytes.len() as f64) * frac) as usize; // strict prefix
        match TsFileReader::open(&bytes[..cut]) {
            Err(_) => {}
            Ok(r) => {
                // The footer happened to survive (cut inside trailing
                // padding cannot occur — finish() writes none — so any
                // successful open must fail at chunk read or CRC).
                prop_assert!(r.read_ints("s").is_err());
            }
        }
    }

    #[test]
    fn tsfile_survives_bit_flips(
        values in outlier_blocks(),
        at_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut w = TsFileWriter::new();
        w.add_int_series("s", &values, EncodingChoice::TS2DIFF_BOS).expect("write");
        let mut bytes = w.finish();
        let at = ((bytes.len() as f64) * at_frac) as usize % bytes.len();
        bytes[at] ^= 1u8 << bit;
        // Payload flips are caught by CRC (failure_injection.rs proves that
        // deterministically); flips in footer metadata may surface anywhere
        // from open() to decode. The contract here is only: typed Err or
        // correct data, never a panic.
        if let Ok(r) = TsFileReader::open(&bytes) {
            let _ = r.read_ints("s");
        }
    }
}
