//! Schema round-trip for the flight recorder's chrome-trace export
//! (PR 9 acceptance): drive an instrumented encode through the same path
//! `boscli encode --trace-out` uses, then verify the exported JSON is a
//! valid Chrome `trace_event` array — every element carries the
//! `ph`/`ts`/`pid`/`tid`/`name` fields about:tracing requires.
//!
//! One `#[test]`: the recorder's rings are process-global, and a second
//! test draining concurrently would steal this one's events.
//! Integration-test files are separate processes, so other binaries
//! can't interfere.

use bitpack::codec::encode_blocks_parallel;
use bos::{BosCodec, SolverKind};

/// Splits the top-level elements of a JSON array by brace balancing
/// (string-aware, so quoted braces don't count). Panics on anything
/// that is not a single well-formed array — that *is* the schema check.
fn array_elements(json: &str) -> Vec<String> {
    let body = json.trim();
    assert!(
        body.starts_with('[') && body.ends_with(']'),
        "chrome trace must be one JSON array, got {:?}...",
        &body[..body.len().min(40)]
    );
    let mut elements = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut current = String::new();
    for c in body[1..body.len() - 1].chars() {
        if in_string {
            current.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                current.push(c);
            }
            '{' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth = depth.checked_sub(1).expect("unbalanced braces");
                current.push(c);
            }
            ',' if depth == 0 => elements.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    assert_eq!(depth, 0, "unbalanced braces in chrome trace");
    assert!(!in_string, "unterminated string in chrome trace");
    if !current.trim().is_empty() {
        elements.push(current);
    }
    elements
}

#[test]
fn chrome_trace_export_matches_the_trace_event_schema() {
    if !obs::enabled() {
        assert!(
            obs::trail::drain().is_empty(),
            "feature-off trail must be empty"
        );
        return;
    }
    obs::trail::set_recording(true);
    obs::trail::drain(); // isolate: events from other tests in this process

    // Same path as `boscli encode --trace-out`: parallel driver + BOS-A,
    // then drain and export. Two threads so driver provenance is present.
    let values: Vec<i64> = (0..4096)
        .map(|i| if i % 50 == 0 { 1 << 40 } else { i % 200 })
        .collect();
    let codec = BosCodec::new(SolverKind::Adaptive);
    let mut buf = Vec::new();
    encode_blocks_parallel(&codec, &values, 512, 2, &mut buf).expect("encode");
    let trail = obs::trail::drain();
    assert!(!trail.is_empty(), "instrumented encode must leave events");

    let json = obs::trail::to_chrome_trace(&trail);
    let elements = array_elements(&json);
    assert_eq!(
        elements.len(),
        trail.len(),
        "one trace_event element per trail event"
    );
    for (i, el) in elements.iter().enumerate() {
        let el = el.trim();
        assert!(
            el.starts_with('{') && el.ends_with('}'),
            "element {i} is not an object: {el:?}"
        );
        for key in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":", "\"name\":"] {
            assert!(el.contains(key), "element {i} lacks {key}: {el:?}");
        }
        // `ph` is one of the two phases the exporter emits: complete
        // spans ("X", which also carry "dur") or instant events ("i").
        let complete = el.contains("\"ph\": \"X\"");
        let instant = el.contains("\"ph\": \"i\"");
        assert!(complete || instant, "element {i} has unknown ph: {el:?}");
        assert_eq!(
            complete,
            el.contains("\"dur\":"),
            "element {i}: dur iff complete-span: {el:?}"
        );
    }

    // Spot-check provenance coverage: block-level solver decisions and
    // the span mirror must both be present in the export.
    assert!(json.contains("\"trail.adaptive_verdict\""));
    assert!(json.contains("solver_search.BOS-A"));

    // The export is a pure function of the drained snapshot.
    assert_eq!(json, obs::trail::to_chrome_trace(&trail));
}
