//! End-to-end integration: every dataset through every pipeline, losslessly.

use bos_repro::datasets::{all_datasets, DataType, SeriesData};
use bos_repro::encodings::{OuterKind, PackerKind, Pipeline};
use bos_repro::floatcodec::all_codecs;

const N: usize = 8_000;

#[test]
fn every_pipeline_roundtrips_every_dataset() {
    for dataset in all_datasets(N) {
        let ints = dataset.as_scaled_ints();
        for outer in OuterKind::ALL {
            for packer in PackerKind::ALL {
                // BOS-V is O(n²); keep runtime sane by skipping it for the
                // quadratic-cost combinations here (covered in bos tests).
                if packer == PackerKind::BosV {
                    continue;
                }
                let pipeline = Pipeline::new(outer, packer);
                let mut buf = Vec::new();
                pipeline.encode(&ints, &mut buf);
                let mut out = Vec::new();
                let mut pos = 0;
                pipeline
                    .decode(&buf, &mut pos, &mut out)
                    .unwrap_or_else(|_e| panic!("{} on {}", pipeline.label(), dataset.abbr));
                assert_eq!(out, ints, "{} on {}", pipeline.label(), dataset.abbr);
                assert_eq!(pos, buf.len(), "{} on {}", pipeline.label(), dataset.abbr);
            }
        }
    }
}

#[test]
fn float_codecs_roundtrip_float_datasets_bit_exactly() {
    for dataset in all_datasets(N) {
        if dataset.kind != DataType::Float {
            continue;
        }
        let SeriesData::Floats { values, .. } = &dataset.data else {
            unreachable!()
        };
        for codec in all_codecs() {
            let mut buf = Vec::new();
            codec.encode(values, &mut buf);
            let mut out = Vec::new();
            let mut pos = 0;
            codec
                .decode(&buf, &mut pos, &mut out)
                .unwrap_or_else(|_e| panic!("{} on {}", codec.name(), dataset.abbr));
            assert_eq!(out.len(), values.len());
            for (a, b) in values.iter().zip(&out) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} on {}",
                    codec.name(),
                    dataset.abbr
                );
            }
        }
    }
}

#[test]
fn float_scaling_pipeline_is_lossless_on_float_datasets() {
    for dataset in all_datasets(N) {
        if dataset.kind != DataType::Float {
            continue;
        }
        let SeriesData::Floats { values, .. } = &dataset.data else {
            unreachable!()
        };
        let pipeline = Pipeline::new(OuterKind::Ts2Diff, PackerKind::BosB);
        let mut buf = Vec::new();
        pipeline
            .encode_f64(values, &mut buf)
            .unwrap_or_else(|e| panic!("{} failed to scale: {e}", dataset.abbr));
        let mut out = Vec::new();
        let mut pos = 0;
        pipeline
            .decode_f64(&buf, &mut pos, &mut out)
            .expect("decode");
        assert_eq!(&out, values, "{}", dataset.abbr);
    }
}

#[test]
fn bos_b_never_loses_to_bp_by_more_than_headers() {
    // Per-block optimality means TS2DIFF+BOS-B can only lose to
    // TS2DIFF+BP by per-block header overhead (a few bytes per 1024
    // values), never by payload.
    for dataset in all_datasets(N) {
        let ints = dataset.as_scaled_ints();
        let size = |packer: PackerKind| {
            let mut buf = Vec::new();
            Pipeline::new(OuterKind::Ts2Diff, packer).encode(&ints, &mut buf);
            buf.len()
        };
        let bp = size(PackerKind::Bp);
        let bos = size(PackerKind::BosB);
        let blocks = ints.len().div_ceil(1024).max(1);
        assert!(
            bos <= bp + blocks * 16,
            "{}: bos {} vs bp {}",
            dataset.abbr,
            bos,
            bp
        );
    }
}

#[test]
fn bos_b_beats_every_baseline_on_average() {
    // The headline claim (Figure 10b): averaged over the datasets,
    // TS2DIFF+BOS-B has the best compression ratio of the operator grid.
    let mut totals: Vec<(PackerKind, f64)> = PackerKind::ALL
        .iter()
        .filter(|&&p| p != PackerKind::BosV) // identical to BosB, and slow
        .map(|&p| (p, 0.0))
        .collect();
    for dataset in all_datasets(N) {
        let ints = dataset.as_scaled_ints();
        let raw = dataset.uncompressed_bytes() as f64;
        for (packer, acc) in totals.iter_mut() {
            let mut buf = Vec::new();
            Pipeline::new(OuterKind::Ts2Diff, *packer).encode(&ints, &mut buf);
            *acc += raw / buf.len() as f64;
        }
    }
    let bos = totals
        .iter()
        .find(|(p, _)| *p == PackerKind::BosB)
        .expect("present")
        .1;
    for (packer, total) in &totals {
        if *packer != PackerKind::BosB {
            assert!(
                bos >= *total,
                "BOS-B ({bos:.2}) lost to {packer:?} ({total:.2}) on average"
            );
        }
    }
}
