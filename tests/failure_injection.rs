//! Failure injection across the whole stack, driven by the seeded
//! `faultsim` corruption engine: bit flips, byte garbage, truncations and
//! torn tails must never panic any decoder, and integrity-checked layers
//! must detect corruption. Every trial is reproducible from (plan index,
//! seed) — no hand-rolled offset lists.

use bos_repro::datasets::generate;
use bos_repro::encodings::{OuterKind, PackerKind, Pipeline};
use bos_repro::faultsim::{Fault, FaultPlan};
use bos_repro::floatcodec::all_codecs;
use bos_repro::gpcomp::{ByteCodec, Lz4Like, LzmaLite};
use bos_repro::query::Scanner;
use bos_repro::tsfile::{EncodingChoice, TsFileReader, TsFileWriter};

/// A representative spread of corruption plans. Applying each at several
/// seeds covers single/multi bit flips, byte garbage, range rewrites,
/// truncation, torn tails, dropped ranges and destroyed trailers.
fn fault_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::single(Fault::FlipBits { count: 1 }),
        FaultPlan::single(Fault::FlipBits { count: 8 }),
        FaultPlan::single(Fault::GarbageBytes { count: 4 }),
        FaultPlan::single(Fault::GarbageRange { max_len: 64 }),
        FaultPlan::single(Fault::Truncate),
        FaultPlan::single(Fault::TornTail { max_tail: 32 }),
        FaultPlan::single(Fault::DropRange { max_len: 48 }),
        FaultPlan::single(Fault::DestroyTail { count: 24 }),
        FaultPlan::new()
            .with(Fault::FlipBits { count: 3 })
            .with(Fault::TornTail { max_tail: 16 }),
    ]
}

const SEEDS: u64 = 8;

#[test]
fn pipelines_survive_faults_without_panicking() {
    let ints = generate("MT", 4_000).expect("dataset").as_scaled_ints();
    for outer in OuterKind::ALL {
        for packer in [
            PackerKind::Bp,
            PackerKind::FastPfor,
            PackerKind::BosB,
            PackerKind::BosM,
        ] {
            let pipeline = Pipeline::new(outer, packer);
            let mut buf = Vec::new();
            pipeline.encode(&ints, &mut buf);
            for (p, plan) in fault_plans().iter().enumerate() {
                for seed in 0..SEEDS {
                    let mut corrupt = buf.clone();
                    plan.apply(&mut corrupt, seed ^ (p as u64) << 32);
                    let mut out = Vec::new();
                    let mut pos = 0;
                    // Must not panic. If decode "succeeds", the result may
                    // be wrong data (these layers have no checksums) —
                    // that is the TsFile layer's job.
                    let _ = pipeline.decode(&corrupt, &mut pos, &mut out);
                }
            }
        }
    }
}

#[test]
fn float_codecs_survive_faults() {
    let values = generate("YE", 3_000).expect("dataset").as_floats();
    for codec in all_codecs() {
        let mut buf = Vec::new();
        codec.encode(&values, &mut buf);
        for (p, plan) in fault_plans().iter().enumerate() {
            for seed in 0..SEEDS {
                let mut corrupt = buf.clone();
                plan.apply(
                    &mut corrupt,
                    seed.wrapping_mul(0x9E37).wrapping_add(p as u64),
                );
                let mut out = Vec::new();
                let mut pos = 0;
                let _ = codec.decode(&corrupt, &mut pos, &mut out);
            }
        }
    }
}

#[test]
fn byte_codecs_survive_faults() {
    let data: Vec<u8> = (0..20_000u32)
        .flat_map(|i| (i % 300).to_le_bytes())
        .collect();
    let codecs: Vec<Box<dyn ByteCodec>> = vec![Box::new(Lz4Like::new()), Box::new(LzmaLite::new())];
    for codec in codecs {
        let mut buf = Vec::new();
        codec.compress(&data, &mut buf);
        for (p, plan) in fault_plans().iter().enumerate() {
            for seed in 0..SEEDS {
                let mut corrupt = buf.clone();
                plan.apply(&mut corrupt, seed | (p as u64) << 48);
                let mut out = Vec::new();
                let mut pos = 0;
                let _ = codec.decompress(&corrupt, &mut pos, &mut out);
            }
        }
    }
}

#[test]
fn tsfile_detects_every_payload_fault() {
    // Unlike the raw codecs, TsFile carries CRCs: any corruption confined
    // to a chunk payload must surface as an error, never as silently
    // wrong data.
    let ints = generate("CS", 5_000).expect("dataset").as_scaled_ints();
    let mut w = TsFileWriter::new();
    w.add_int_series("s", &ints, EncodingChoice::TS2DIFF_BOS)
        .unwrap();
    let bytes = w.finish();
    let payload = {
        let r = TsFileReader::open(&bytes).unwrap();
        r.chunk_ranges("s").unwrap().1
    };
    let mut silent_corruptions = 0usize;
    for plan in [
        FaultPlan::single(Fault::FlipBits { count: 1 }),
        FaultPlan::single(Fault::FlipBits { count: 5 }),
        FaultPlan::single(Fault::GarbageBytes { count: 3 }),
        FaultPlan::single(Fault::GarbageRange { max_len: 40 }),
    ] {
        for seed in 0..4 * SEEDS {
            let mut corrupt = bytes.clone();
            let records = plan.apply_in(&mut corrupt, payload.clone(), seed);
            if corrupt == bytes {
                continue; // the draw was a no-op (e.g. flip of an equal bit)
            }
            assert!(records
                .iter()
                .all(|r| { r.touched.start >= payload.start && r.touched.end <= payload.end }));
            match TsFileReader::open(&corrupt) {
                Err(_) => {}
                Ok(r) => match r.read_ints("s") {
                    Err(_) => {}
                    Ok(out) => {
                        if out != ints {
                            silent_corruptions += 1;
                        }
                    }
                },
            }
        }
    }
    assert_eq!(
        silent_corruptions, 0,
        "corruption returned wrong data silently"
    );
}

#[test]
fn scanner_rejects_faulted_streams_or_answers_consistently() {
    use bos_repro::bos::stream::StreamEncoder;
    use bos_repro::bos::SolverKind;
    let ints = generate("TT", 8_000).expect("dataset").as_scaled_ints();
    let mut stream = Vec::new();
    StreamEncoder::new(SolverKind::BitWidth, 512).encode(&ints, &mut stream);
    for (p, plan) in fault_plans().iter().enumerate() {
        for seed in 0..SEEDS {
            let mut corrupt = stream.clone();
            plan.apply(&mut corrupt, seed ^ (p as u64) << 16);
            if let Ok(scanner) = Scanner::open(&corrupt) {
                // No checksums at this layer: results may be wrong, but
                // calls must stay panic-free and internally consistent.
                let total = scanner.count_in_range(i64::MIN, i64::MAX);
                if let Ok(t) = total {
                    assert!(t <= scanner.len());
                }
                let _ = scanner.min();
                let _ = scanner.max();
            }
        }
    }
}
