//! Failure injection across the whole stack: bit flips, truncations and
//! garbage must never panic any decoder, and integrity-checked layers must
//! detect corruption.

use bos_repro::datasets::generate;
use bos_repro::encodings::{OuterKind, PackerKind, Pipeline};
use bos_repro::floatcodec::all_codecs;
use bos_repro::gpcomp::{ByteCodec, Lz4Like, LzmaLite};
use bos_repro::query::Scanner;
use bos_repro::tsfile::{EncodingChoice, TsFileReader, TsFileWriter};

/// Deterministic corruption positions: a spread of offsets plus both ends.
fn flip_positions(len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let mut v: Vec<usize> = (0..23).map(|i| i * len / 23).collect();
    v.push(len - 1);
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn pipelines_survive_bit_flips_without_panicking() {
    let ints = generate("MT", 4_000).expect("dataset").as_scaled_ints();
    for outer in OuterKind::ALL {
        for packer in [PackerKind::Bp, PackerKind::FastPfor, PackerKind::BosB, PackerKind::BosM] {
            let pipeline = Pipeline::new(outer, packer);
            let mut buf = Vec::new();
            pipeline.encode(&ints, &mut buf);
            for at in flip_positions(buf.len()) {
                for bit in [0x01u8, 0x80] {
                    let mut corrupt = buf.clone();
                    corrupt[at] ^= bit;
                    let mut out = Vec::new();
                    let mut pos = 0;
                    // Must not panic. If decode "succeeds", the result may
                    // be wrong data (these layers have no checksums) —
                    // that is the TsFile layer's job.
                    let _ = pipeline.decode(&corrupt, &mut pos, &mut out);
                }
            }
        }
    }
}

#[test]
fn float_codecs_survive_bit_flips() {
    let values = generate("YE", 3_000).expect("dataset").as_floats();
    for codec in all_codecs() {
        let mut buf = Vec::new();
        codec.encode(&values, &mut buf);
        for at in flip_positions(buf.len()) {
            let mut corrupt = buf.clone();
            corrupt[at] ^= 0x10;
            let mut out = Vec::new();
            let mut pos = 0;
            let _ = codec.decode(&corrupt, &mut pos, &mut out);
        }
    }
}

#[test]
fn byte_codecs_survive_bit_flips() {
    let data: Vec<u8> = (0..20_000u32).flat_map(|i| (i % 300).to_le_bytes()).collect();
    let codecs: Vec<Box<dyn ByteCodec>> = vec![Box::new(Lz4Like::new()), Box::new(LzmaLite::new())];
    for codec in codecs {
        let mut buf = Vec::new();
        codec.compress(&data, &mut buf);
        for at in flip_positions(buf.len()) {
            let mut corrupt = buf.clone();
            corrupt[at] ^= 0x44;
            let mut out = Vec::new();
            let mut pos = 0;
            let _ = codec.decompress(&corrupt, &mut pos, &mut out);
        }
    }
}

#[test]
fn tsfile_detects_every_payload_flip() {
    // Unlike the raw codecs, TsFile carries CRCs: every flip inside a
    // chunk payload must surface as an error, never as silently wrong
    // data.
    let ints = generate("CS", 5_000).expect("dataset").as_scaled_ints();
    let mut w = TsFileWriter::new();
    w.add_int_series("s", &ints, EncodingChoice::TS2DIFF_BOS).unwrap();
    let bytes = w.finish();
    let mut silent_corruptions = 0usize;
    for at in flip_positions(bytes.len()) {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x20;
        match TsFileReader::open(&corrupt) {
            Err(_) => {}
            Ok(r) => match r.read_ints("s") {
                Err(_) => {}
                Ok(out) => {
                    if out != ints {
                        silent_corruptions += 1;
                    }
                }
            },
        }
    }
    assert_eq!(silent_corruptions, 0, "corruption returned wrong data silently");
}

#[test]
fn scanner_rejects_flipped_streams_or_answers_consistently() {
    use bos_repro::bos::stream::StreamEncoder;
    use bos_repro::bos::SolverKind;
    let ints = generate("TT", 8_000).expect("dataset").as_scaled_ints();
    let mut stream = Vec::new();
    StreamEncoder::new(SolverKind::BitWidth, 512).encode(&ints, &mut stream);
    for at in flip_positions(stream.len()) {
        let mut corrupt = stream.clone();
        corrupt[at] ^= 0x08;
        if let Ok(scanner) = Scanner::open(&corrupt) {
            // No checksums at this layer: results may be wrong, but calls
            // must stay panic-free and internally consistent.
            let total = scanner.count_in_range(i64::MIN, i64::MAX);
            if let Ok(t) = total {
                assert!(t <= scanner.len());
            }
            let _ = scanner.min();
            let _ = scanner.max();
        }
    }
}
